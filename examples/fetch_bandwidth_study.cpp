/**
 * @file
 * Fetch bandwidth study: the paper's five front-end configurations on
 * one benchmark, with the fetch-width histogram of the best one —
 * the experiment a front-end architect would run first.
 *
 *   ./fetch_bandwidth_study [benchmark] [max_insts]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

int
main(int argc, char **argv)
{
    using namespace tcsim;

    const std::string bench = argc > 1 ? argv[1] : "gcc";
    const std::uint64_t max_insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;

    workload::Program program =
        workload::generateProgram(workload::findProfile(bench));

    const std::vector<sim::ProcessorConfig> configs = {
        sim::icacheConfig(),
        sim::baselineConfig(),
        sim::packingConfig(),
        sim::promotionConfig(64),
        sim::promotionPackingConfig(64),
    };

    std::printf("%-26s %9s %7s %9s %8s %8s\n", "configuration",
                "effFetch", "IPC", "mispred%", "preds<=1", "tcHit%");
    sim::SimResult best;
    for (const sim::ProcessorConfig &config : configs) {
        sim::Processor proc(config, program);
        const sim::SimResult r = proc.run(max_insts);
        std::printf("%-26s %9.2f %7.2f %8.2f%% %7.0f%% %7.1f%%\n",
                    r.config.c_str(), r.effectiveFetchRate, r.ipc,
                    100 * r.condMispredictRate,
                    100 * r.fetchesNeeding01,
                    r.tcLookups ? 100.0 * r.tcHits / r.tcLookups : 0.0);
        best = r;
    }

    std::printf("\nFetch-size distribution, %s (correct-path fetches):\n",
                best.config.c_str());
    std::uint64_t total = 0;
    std::uint64_t by_width[sim::Accounting::kMaxFetchWidth + 1] = {};
    for (unsigned r = 0;
         r < static_cast<unsigned>(sim::FetchReason::NumReasons); ++r) {
        for (unsigned w = 0; w <= sim::Accounting::kMaxFetchWidth; ++w) {
            by_width[w] += best.fetchHist[r][w];
            total += best.fetchHist[r][w];
        }
    }
    for (unsigned w = 1; w <= sim::Accounting::kMaxFetchWidth; ++w) {
        const double frac =
            total ? static_cast<double>(by_width[w]) / total : 0.0;
        std::printf("%4u | %-50.*s %.3f\n", w,
                    static_cast<int>(frac * 250),
                    "##################################################",
                    frac);
    }
    return 0;
}
