/**
 * @file
 * Predictor playground: feed the architectural branch stream of any
 * benchmark to the library's predictors side by side — the single
 * hybrid (gshare + PAs), the tree multiple-branch predictor, and the
 * split predictor — and report their accuracy. A standalone use of
 * the bpred and workload libraries without the timing simulator.
 *
 *   ./predictor_playground [benchmark] [branches]
 */

#include <cstdio>
#include <cstdlib>

#include "bpred/history.h"
#include "bpred/hybrid.h"
#include "bpred/multi.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/profile.h"

int
main(int argc, char **argv)
{
    using namespace tcsim;

    const std::string bench = argc > 1 ? argv[1] : "gcc";
    const std::uint64_t max_branches =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    workload::Program program =
        workload::generateProgram(workload::findProfile(bench));
    workload::FunctionalExecutor exec(program);

    bpred::HybridPredictor hybrid;
    bpred::TreeMbp tree;
    bpred::SplitMbp split;
    bpred::GlobalHistory history;

    std::uint64_t branches = 0;
    std::uint64_t wrong_hybrid = 0, wrong_tree = 0, wrong_split = 0;

    while (!exec.halted() && branches < max_branches) {
        const workload::StepResult step = exec.step();
        if (!isa::isCondBranch(step.inst.op))
            continue;
        ++branches;

        // Single-branch predictors see the branch pc directly; the
        // multiple-branch predictors are driven here in their
        // position-0 role (every branch the first of its fetch group).
        const bpred::HybridCtx hctx =
            hybrid.predict(step.pc, history.value());
        wrong_hybrid += hctx.prediction != step.taken;
        hybrid.update(step.pc, hctx, step.taken);

        const bool tree_pred =
            tree.predict(step.pc, history.value(), 0, 0);
        wrong_tree += tree_pred != step.taken;
        bpred::MbpCtx ctx;
        ctx.fetchAddr = step.pc;
        ctx.history = history.value();
        tree.update(ctx, step.taken);

        const bool split_pred =
            split.predict(step.pc, history.value(), 0, 0);
        wrong_split += split_pred != step.taken;
        split.update(ctx, step.taken);

        history.push(step.taken);
    }

    std::printf("benchmark %s: %llu conditional branches\n", bench.c_str(),
                static_cast<unsigned long long>(branches));
    std::printf("%-28s %10s\n", "predictor", "mispredict");
    std::printf("%-28s %9.2f%%\n", "hybrid gshare+PAs (32KB)",
                100.0 * wrong_hybrid / branches);
    std::printf("%-28s %9.2f%%\n", "tree MBP 16Kx7 (32KB)",
                100.0 * wrong_tree / branches);
    std::printf("%-28s %9.2f%%\n", "split MBP 64K/16K/8K (24KB)",
                100.0 * wrong_split / branches);
    return 0;
}
