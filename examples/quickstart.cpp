/**
 * @file
 * Quickstart: generate a benchmark, run it on the baseline trace-cache
 * processor, and print the headline metrics.
 *
 *   ./quickstart [benchmark] [max_insts]
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

int
main(int argc, char **argv)
{
    using namespace tcsim;

    const std::string bench = argc > 1 ? argv[1] : "compress";
    const std::uint64_t max_insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500000;

    // 1. Generate the synthetic benchmark (a real µRISC executable).
    const workload::BenchmarkProfile &profile =
        workload::findProfile(bench);
    workload::Program program = workload::generateProgram(profile);
    std::printf("benchmark %s: %zu static instructions\n",
                program.name().c_str(), program.codeSize());

    // 2. Build the paper's baseline machine and run it.
    sim::Processor processor(sim::baselineConfig(), program);
    const sim::SimResult result = processor.run(max_insts);

    // 3. Report.
    std::printf("instructions        %llu\n",
                static_cast<unsigned long long>(result.instructions));
    std::printf("cycles              %llu\n",
                static_cast<unsigned long long>(result.cycles));
    std::printf("IPC                 %.3f\n", result.ipc);
    std::printf("effective fetch     %.2f insts/fetch\n",
                result.effectiveFetchRate);
    std::printf("mispredict rate     %.2f%%\n",
                100 * result.condMispredictRate);
    std::printf("trace cache hits    %.1f%%\n",
                result.tcLookups
                    ? 100.0 * result.tcHits / result.tcLookups
                    : 0.0);

    // 4. The full statistics dump.
    std::ostringstream os;
    result.stats.print(os);
    std::printf("\n--- full statistics ---\n%s", os.str().c_str());
    return 0;
}
