# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "compress" "20000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fetch_bandwidth_study "/root/repo/build/examples/fetch_bandwidth_study" "compress" "20000")
set_tests_properties(example_fetch_bandwidth_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_predictor_playground "/root/repo/build/examples/predictor_playground" "compress" "5000")
set_tests_properties(example_predictor_playground PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
