# Empty dependencies file for fetch_bandwidth_study.
# This may be replaced when dependencies are built.
