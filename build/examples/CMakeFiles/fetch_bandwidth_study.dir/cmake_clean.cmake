file(REMOVE_RECURSE
  "CMakeFiles/fetch_bandwidth_study.dir/fetch_bandwidth_study.cpp.o"
  "CMakeFiles/fetch_bandwidth_study.dir/fetch_bandwidth_study.cpp.o.d"
  "fetch_bandwidth_study"
  "fetch_bandwidth_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_bandwidth_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
