# Empty compiler generated dependencies file for predictor_playground.
# This may be replaced when dependencies are built.
