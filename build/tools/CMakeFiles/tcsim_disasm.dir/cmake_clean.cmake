file(REMOVE_RECURSE
  "CMakeFiles/tcsim_disasm.dir/tcsim_disasm.cc.o"
  "CMakeFiles/tcsim_disasm.dir/tcsim_disasm.cc.o.d"
  "tcsim_disasm"
  "tcsim_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
