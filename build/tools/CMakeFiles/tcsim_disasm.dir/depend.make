# Empty dependencies file for tcsim_disasm.
# This may be replaced when dependencies are built.
