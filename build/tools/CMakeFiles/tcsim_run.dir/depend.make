# Empty dependencies file for tcsim_run.
# This may be replaced when dependencies are built.
