file(REMOVE_RECURSE
  "CMakeFiles/tcsim_run.dir/tcsim_run.cc.o"
  "CMakeFiles/tcsim_run.dir/tcsim_run.cc.o.d"
  "tcsim_run"
  "tcsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
