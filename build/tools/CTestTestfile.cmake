# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_tcsim_run_baseline "/root/repo/build/tools/tcsim_run" "--bench" "compress" "--insts" "20000")
set_tests_properties(tools_tcsim_run_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_tcsim_run_full_options "/root/repo/build/tools/tcsim_run" "--bench" "li" "--config" "promo-pack" "--packing" "cost" "--threshold" "32" "--insts" "20000" "--warmup" "5000" "--disambiguation" "speculative" "--path-assoc" "--histogram")
set_tests_properties(tools_tcsim_run_full_options PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_tcsim_run_static_promotion "/root/repo/build/tools/tcsim_run" "--bench" "compress" "--config" "promotion" "--static-promotion" "--insts" "20000")
set_tests_properties(tools_tcsim_run_static_promotion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_tcsim_run_list "/root/repo/build/tools/tcsim_run" "--bench" "list")
set_tests_properties(tools_tcsim_run_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_tcsim_disasm_roundtrip "/root/repo/build/tools/tcsim_disasm" "--bench" "compress" "--limit" "4" "--characterize" "20000" "--save" "/root/repo/build/compress.tcsimprg")
set_tests_properties(tools_tcsim_disasm_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_tcsim_disasm_load "/root/repo/build/tools/tcsim_disasm" "--load" "/root/repo/build/compress.tcsimprg" "--limit" "4")
set_tests_properties(tools_tcsim_disasm_load PROPERTIES  DEPENDS "tools_tcsim_disasm_roundtrip" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
