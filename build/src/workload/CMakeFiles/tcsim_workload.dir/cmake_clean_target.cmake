file(REMOVE_RECURSE
  "libtcsim_workload.a"
)
