# Empty compiler generated dependencies file for tcsim_workload.
# This may be replaced when dependencies are built.
