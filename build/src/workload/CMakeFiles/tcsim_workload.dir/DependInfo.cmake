
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/tcsim_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/tcsim_workload.dir/builder.cc.o.d"
  "/root/repo/src/workload/characterize.cc" "src/workload/CMakeFiles/tcsim_workload.dir/characterize.cc.o" "gcc" "src/workload/CMakeFiles/tcsim_workload.dir/characterize.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/workload/CMakeFiles/tcsim_workload.dir/executor.cc.o" "gcc" "src/workload/CMakeFiles/tcsim_workload.dir/executor.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/tcsim_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/tcsim_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/program.cc" "src/workload/CMakeFiles/tcsim_workload.dir/program.cc.o" "gcc" "src/workload/CMakeFiles/tcsim_workload.dir/program.cc.o.d"
  "/root/repo/src/workload/serialize.cc" "src/workload/CMakeFiles/tcsim_workload.dir/serialize.cc.o" "gcc" "src/workload/CMakeFiles/tcsim_workload.dir/serialize.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/tcsim_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/tcsim_workload.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/tcsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
