file(REMOVE_RECURSE
  "CMakeFiles/tcsim_workload.dir/builder.cc.o"
  "CMakeFiles/tcsim_workload.dir/builder.cc.o.d"
  "CMakeFiles/tcsim_workload.dir/characterize.cc.o"
  "CMakeFiles/tcsim_workload.dir/characterize.cc.o.d"
  "CMakeFiles/tcsim_workload.dir/executor.cc.o"
  "CMakeFiles/tcsim_workload.dir/executor.cc.o.d"
  "CMakeFiles/tcsim_workload.dir/generator.cc.o"
  "CMakeFiles/tcsim_workload.dir/generator.cc.o.d"
  "CMakeFiles/tcsim_workload.dir/program.cc.o"
  "CMakeFiles/tcsim_workload.dir/program.cc.o.d"
  "CMakeFiles/tcsim_workload.dir/serialize.cc.o"
  "CMakeFiles/tcsim_workload.dir/serialize.cc.o.d"
  "CMakeFiles/tcsim_workload.dir/suite.cc.o"
  "CMakeFiles/tcsim_workload.dir/suite.cc.o.d"
  "libtcsim_workload.a"
  "libtcsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
