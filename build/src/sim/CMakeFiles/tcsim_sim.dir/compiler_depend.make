# Empty compiler generated dependencies file for tcsim_sim.
# This may be replaced when dependencies are built.
