file(REMOVE_RECURSE
  "CMakeFiles/tcsim_sim.dir/accounting.cc.o"
  "CMakeFiles/tcsim_sim.dir/accounting.cc.o.d"
  "CMakeFiles/tcsim_sim.dir/config.cc.o"
  "CMakeFiles/tcsim_sim.dir/config.cc.o.d"
  "CMakeFiles/tcsim_sim.dir/processor.cc.o"
  "CMakeFiles/tcsim_sim.dir/processor.cc.o.d"
  "libtcsim_sim.a"
  "libtcsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
