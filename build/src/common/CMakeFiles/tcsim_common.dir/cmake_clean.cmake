file(REMOVE_RECURSE
  "CMakeFiles/tcsim_common.dir/log.cc.o"
  "CMakeFiles/tcsim_common.dir/log.cc.o.d"
  "CMakeFiles/tcsim_common.dir/stats.cc.o"
  "CMakeFiles/tcsim_common.dir/stats.cc.o.d"
  "libtcsim_common.a"
  "libtcsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
