# Empty dependencies file for tcsim_common.
# This may be replaced when dependencies are built.
