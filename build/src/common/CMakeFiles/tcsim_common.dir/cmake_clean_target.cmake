file(REMOVE_RECURSE
  "libtcsim_common.a"
)
