# Empty compiler generated dependencies file for tcsim_common.
# This may be replaced when dependencies are built.
