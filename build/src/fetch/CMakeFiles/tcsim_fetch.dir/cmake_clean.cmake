file(REMOVE_RECURSE
  "CMakeFiles/tcsim_fetch.dir/fetch_engine.cc.o"
  "CMakeFiles/tcsim_fetch.dir/fetch_engine.cc.o.d"
  "libtcsim_fetch.a"
  "libtcsim_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
