# Empty compiler generated dependencies file for tcsim_fetch.
# This may be replaced when dependencies are built.
