file(REMOVE_RECURSE
  "libtcsim_fetch.a"
)
