file(REMOVE_RECURSE
  "libtcsim_trace.a"
)
