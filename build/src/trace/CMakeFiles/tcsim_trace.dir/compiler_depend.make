# Empty compiler generated dependencies file for tcsim_trace.
# This may be replaced when dependencies are built.
