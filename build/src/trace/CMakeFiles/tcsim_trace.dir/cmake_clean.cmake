file(REMOVE_RECURSE
  "CMakeFiles/tcsim_trace.dir/fill_unit.cc.o"
  "CMakeFiles/tcsim_trace.dir/fill_unit.cc.o.d"
  "CMakeFiles/tcsim_trace.dir/segment.cc.o"
  "CMakeFiles/tcsim_trace.dir/segment.cc.o.d"
  "CMakeFiles/tcsim_trace.dir/trace_cache.cc.o"
  "CMakeFiles/tcsim_trace.dir/trace_cache.cc.o.d"
  "libtcsim_trace.a"
  "libtcsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
