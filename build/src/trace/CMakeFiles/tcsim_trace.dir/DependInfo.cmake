
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/fill_unit.cc" "src/trace/CMakeFiles/tcsim_trace.dir/fill_unit.cc.o" "gcc" "src/trace/CMakeFiles/tcsim_trace.dir/fill_unit.cc.o.d"
  "/root/repo/src/trace/segment.cc" "src/trace/CMakeFiles/tcsim_trace.dir/segment.cc.o" "gcc" "src/trace/CMakeFiles/tcsim_trace.dir/segment.cc.o.d"
  "/root/repo/src/trace/trace_cache.cc" "src/trace/CMakeFiles/tcsim_trace.dir/trace_cache.cc.o" "gcc" "src/trace/CMakeFiles/tcsim_trace.dir/trace_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bpred/CMakeFiles/tcsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tcsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
