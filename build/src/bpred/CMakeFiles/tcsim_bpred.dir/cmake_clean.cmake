file(REMOVE_RECURSE
  "CMakeFiles/tcsim_bpred.dir/bias_table.cc.o"
  "CMakeFiles/tcsim_bpred.dir/bias_table.cc.o.d"
  "CMakeFiles/tcsim_bpred.dir/hybrid.cc.o"
  "CMakeFiles/tcsim_bpred.dir/hybrid.cc.o.d"
  "CMakeFiles/tcsim_bpred.dir/multi.cc.o"
  "CMakeFiles/tcsim_bpred.dir/multi.cc.o.d"
  "libtcsim_bpred.a"
  "libtcsim_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
