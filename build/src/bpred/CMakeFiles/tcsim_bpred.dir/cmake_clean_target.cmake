file(REMOVE_RECURSE
  "libtcsim_bpred.a"
)
