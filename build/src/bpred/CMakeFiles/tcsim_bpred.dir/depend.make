# Empty dependencies file for tcsim_bpred.
# This may be replaced when dependencies are built.
