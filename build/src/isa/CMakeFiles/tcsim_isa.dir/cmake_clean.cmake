file(REMOVE_RECURSE
  "CMakeFiles/tcsim_isa.dir/instruction.cc.o"
  "CMakeFiles/tcsim_isa.dir/instruction.cc.o.d"
  "libtcsim_isa.a"
  "libtcsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
