# Empty compiler generated dependencies file for tcsim_isa.
# This may be replaced when dependencies are built.
