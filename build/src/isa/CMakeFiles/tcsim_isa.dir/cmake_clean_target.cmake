file(REMOVE_RECURSE
  "libtcsim_isa.a"
)
