# Empty dependencies file for tcsim_isa.
# This may be replaced when dependencies are built.
