# Empty compiler generated dependencies file for tcsim_memory.
# This may be replaced when dependencies are built.
