file(REMOVE_RECURSE
  "CMakeFiles/tcsim_memory.dir/cache.cc.o"
  "CMakeFiles/tcsim_memory.dir/cache.cc.o.d"
  "libtcsim_memory.a"
  "libtcsim_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
