file(REMOVE_RECURSE
  "libtcsim_memory.a"
)
