# Empty compiler generated dependencies file for table2_promotion_threshold.
# This may be replaced when dependencies are built.
