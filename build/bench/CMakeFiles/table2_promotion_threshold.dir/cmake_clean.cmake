file(REMOVE_RECURSE
  "CMakeFiles/table2_promotion_threshold.dir/table2_promotion_threshold.cc.o"
  "CMakeFiles/table2_promotion_threshold.dir/table2_promotion_threshold.cc.o.d"
  "table2_promotion_threshold"
  "table2_promotion_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_promotion_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
