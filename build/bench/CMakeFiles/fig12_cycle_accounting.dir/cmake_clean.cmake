file(REMOVE_RECURSE
  "CMakeFiles/fig12_cycle_accounting.dir/fig12_cycle_accounting.cc.o"
  "CMakeFiles/fig12_cycle_accounting.dir/fig12_cycle_accounting.cc.o.d"
  "fig12_cycle_accounting"
  "fig12_cycle_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cycle_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
