file(REMOVE_RECURSE
  "CMakeFiles/fig7_mispred_change.dir/fig7_mispred_change.cc.o"
  "CMakeFiles/fig7_mispred_change.dir/fig7_mispred_change.cc.o.d"
  "fig7_mispred_change"
  "fig7_mispred_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mispred_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
