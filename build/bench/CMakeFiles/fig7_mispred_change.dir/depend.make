# Empty dependencies file for fig7_mispred_change.
# This may be replaced when dependencies are built.
