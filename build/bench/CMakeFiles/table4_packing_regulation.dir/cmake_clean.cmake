file(REMOVE_RECURSE
  "CMakeFiles/table4_packing_regulation.dir/table4_packing_regulation.cc.o"
  "CMakeFiles/table4_packing_regulation.dir/table4_packing_regulation.cc.o.d"
  "table4_packing_regulation"
  "table4_packing_regulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_packing_regulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
