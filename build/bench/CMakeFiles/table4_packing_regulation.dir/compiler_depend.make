# Empty compiler generated dependencies file for table4_packing_regulation.
# This may be replaced when dependencies are built.
