file(REMOVE_RECURSE
  "CMakeFiles/fig4_fetch_histogram.dir/fig4_fetch_histogram.cc.o"
  "CMakeFiles/fig4_fetch_histogram.dir/fig4_fetch_histogram.cc.o.d"
  "fig4_fetch_histogram"
  "fig4_fetch_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fetch_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
