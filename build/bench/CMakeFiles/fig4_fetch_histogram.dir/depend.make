# Empty dependencies file for fig4_fetch_histogram.
# This may be replaced when dependencies are built.
