
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_fetch_histogram.cc" "bench/CMakeFiles/fig4_fetch_histogram.dir/fig4_fetch_histogram.cc.o" "gcc" "bench/CMakeFiles/fig4_fetch_histogram.dir/fig4_fetch_histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tcsim_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fetch/CMakeFiles/tcsim_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/tcsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tcsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tcsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
