file(REMOVE_RECURSE
  "CMakeFiles/tcsim_bench_harness.dir/harness.cc.o"
  "CMakeFiles/tcsim_bench_harness.dir/harness.cc.o.d"
  "libtcsim_bench_harness.a"
  "libtcsim_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
