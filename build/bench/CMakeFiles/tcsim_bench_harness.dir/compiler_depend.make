# Empty compiler generated dependencies file for tcsim_bench_harness.
# This may be replaced when dependencies are built.
