file(REMOVE_RECURSE
  "libtcsim_bench_harness.a"
)
