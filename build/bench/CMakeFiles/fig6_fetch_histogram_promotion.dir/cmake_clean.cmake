file(REMOVE_RECURSE
  "CMakeFiles/fig6_fetch_histogram_promotion.dir/fig6_fetch_histogram_promotion.cc.o"
  "CMakeFiles/fig6_fetch_histogram_promotion.dir/fig6_fetch_histogram_promotion.cc.o.d"
  "fig6_fetch_histogram_promotion"
  "fig6_fetch_histogram_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fetch_histogram_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
