# Empty dependencies file for fig6_fetch_histogram_promotion.
# This may be replaced when dependencies are built.
