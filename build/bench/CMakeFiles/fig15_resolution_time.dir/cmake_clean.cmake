file(REMOVE_RECURSE
  "CMakeFiles/fig15_resolution_time.dir/fig15_resolution_time.cc.o"
  "CMakeFiles/fig15_resolution_time.dir/fig15_resolution_time.cc.o.d"
  "fig15_resolution_time"
  "fig15_resolution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_resolution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
