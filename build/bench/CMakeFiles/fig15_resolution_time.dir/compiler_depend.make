# Empty compiler generated dependencies file for fig15_resolution_time.
# This may be replaced when dependencies are built.
