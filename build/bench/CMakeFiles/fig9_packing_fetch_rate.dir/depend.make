# Empty dependencies file for fig9_packing_fetch_rate.
# This may be replaced when dependencies are built.
