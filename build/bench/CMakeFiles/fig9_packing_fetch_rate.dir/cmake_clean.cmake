file(REMOVE_RECURSE
  "CMakeFiles/fig9_packing_fetch_rate.dir/fig9_packing_fetch_rate.cc.o"
  "CMakeFiles/fig9_packing_fetch_rate.dir/fig9_packing_fetch_rate.cc.o.d"
  "fig9_packing_fetch_rate"
  "fig9_packing_fetch_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_packing_fetch_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
