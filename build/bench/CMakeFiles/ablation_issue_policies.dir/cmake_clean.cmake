file(REMOVE_RECURSE
  "CMakeFiles/ablation_issue_policies.dir/ablation_issue_policies.cc.o"
  "CMakeFiles/ablation_issue_policies.dir/ablation_issue_policies.cc.o.d"
  "ablation_issue_policies"
  "ablation_issue_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_issue_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
