# Empty dependencies file for ablation_tc_size.
# This may be replaced when dependencies are built.
