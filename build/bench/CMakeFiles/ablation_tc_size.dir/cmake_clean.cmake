file(REMOVE_RECURSE
  "CMakeFiles/ablation_tc_size.dir/ablation_tc_size.cc.o"
  "CMakeFiles/ablation_tc_size.dir/ablation_tc_size.cc.o.d"
  "ablation_tc_size"
  "ablation_tc_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
