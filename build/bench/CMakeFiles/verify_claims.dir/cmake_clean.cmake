file(REMOVE_RECURSE
  "CMakeFiles/verify_claims.dir/verify_claims.cc.o"
  "CMakeFiles/verify_claims.dir/verify_claims.cc.o.d"
  "verify_claims"
  "verify_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
