# Empty dependencies file for verify_claims.
# This may be replaced when dependencies are built.
