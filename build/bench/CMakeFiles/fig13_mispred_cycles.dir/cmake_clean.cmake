file(REMOVE_RECURSE
  "CMakeFiles/fig13_mispred_cycles.dir/fig13_mispred_cycles.cc.o"
  "CMakeFiles/fig13_mispred_cycles.dir/fig13_mispred_cycles.cc.o.d"
  "fig13_mispred_cycles"
  "fig13_mispred_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mispred_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
