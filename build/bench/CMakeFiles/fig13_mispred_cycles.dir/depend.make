# Empty dependencies file for fig13_mispred_cycles.
# This may be replaced when dependencies are built.
