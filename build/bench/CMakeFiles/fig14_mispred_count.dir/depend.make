# Empty dependencies file for fig14_mispred_count.
# This may be replaced when dependencies are built.
