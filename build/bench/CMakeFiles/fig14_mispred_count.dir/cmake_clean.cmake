file(REMOVE_RECURSE
  "CMakeFiles/fig14_mispred_count.dir/fig14_mispred_count.cc.o"
  "CMakeFiles/fig14_mispred_count.dir/fig14_mispred_count.cc.o.d"
  "fig14_mispred_count"
  "fig14_mispred_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mispred_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
