# Empty compiler generated dependencies file for fig16_ipc_perfect.
# This may be replaced when dependencies are built.
