file(REMOVE_RECURSE
  "CMakeFiles/fig16_ipc_perfect.dir/fig16_ipc_perfect.cc.o"
  "CMakeFiles/fig16_ipc_perfect.dir/fig16_ipc_perfect.cc.o.d"
  "fig16_ipc_perfect"
  "fig16_ipc_perfect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ipc_perfect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
