# Empty dependencies file for ablation_static_promotion.
# This may be replaced when dependencies are built.
