file(REMOVE_RECURSE
  "CMakeFiles/ablation_static_promotion.dir/ablation_static_promotion.cc.o"
  "CMakeFiles/ablation_static_promotion.dir/ablation_static_promotion.cc.o.d"
  "ablation_static_promotion"
  "ablation_static_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_static_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
