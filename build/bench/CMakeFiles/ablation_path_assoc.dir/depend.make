# Empty dependencies file for ablation_path_assoc.
# This may be replaced when dependencies are built.
