file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_assoc.dir/ablation_path_assoc.cc.o"
  "CMakeFiles/ablation_path_assoc.dir/ablation_path_assoc.cc.o.d"
  "ablation_path_assoc"
  "ablation_path_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
