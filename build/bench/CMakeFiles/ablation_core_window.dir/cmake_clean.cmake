file(REMOVE_RECURSE
  "CMakeFiles/ablation_core_window.dir/ablation_core_window.cc.o"
  "CMakeFiles/ablation_core_window.dir/ablation_core_window.cc.o.d"
  "ablation_core_window"
  "ablation_core_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_core_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
