# Empty compiler generated dependencies file for ablation_core_window.
# This may be replaced when dependencies are built.
