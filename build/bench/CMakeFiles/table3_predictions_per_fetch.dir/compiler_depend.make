# Empty compiler generated dependencies file for table3_predictions_per_fetch.
# This may be replaced when dependencies are built.
