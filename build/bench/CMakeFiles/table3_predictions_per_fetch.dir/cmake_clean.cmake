file(REMOVE_RECURSE
  "CMakeFiles/table3_predictions_per_fetch.dir/table3_predictions_per_fetch.cc.o"
  "CMakeFiles/table3_predictions_per_fetch.dir/table3_predictions_per_fetch.cc.o.d"
  "table3_predictions_per_fetch"
  "table3_predictions_per_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_predictions_per_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
