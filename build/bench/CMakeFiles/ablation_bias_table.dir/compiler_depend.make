# Empty compiler generated dependencies file for ablation_bias_table.
# This may be replaced when dependencies are built.
