file(REMOVE_RECURSE
  "CMakeFiles/ablation_bias_table.dir/ablation_bias_table.cc.o"
  "CMakeFiles/ablation_bias_table.dir/ablation_bias_table.cc.o.d"
  "ablation_bias_table"
  "ablation_bias_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bias_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
