# Empty compiler generated dependencies file for fig10_fetch_rate_all.
# This may be replaced when dependencies are built.
