file(REMOVE_RECURSE
  "CMakeFiles/fig10_fetch_rate_all.dir/fig10_fetch_rate_all.cc.o"
  "CMakeFiles/fig10_fetch_rate_all.dir/fig10_fetch_rate_all.cc.o.d"
  "fig10_fetch_rate_all"
  "fig10_fetch_rate_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fetch_rate_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
