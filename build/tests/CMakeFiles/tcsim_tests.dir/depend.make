# Empty dependencies file for tcsim_tests.
# This may be replaced when dependencies are built.
