
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bpred.cc" "tests/CMakeFiles/tcsim_tests.dir/test_bpred.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_bpred.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/tcsim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/tcsim_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_fetch.cc" "tests/CMakeFiles/tcsim_tests.dir/test_fetch.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_fetch.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/tcsim_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/tcsim_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_node_tables.cc" "tests/CMakeFiles/tcsim_tests.dir/test_node_tables.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_node_tables.cc.o.d"
  "/root/repo/tests/test_sim_integration.cc" "tests/CMakeFiles/tcsim_tests.dir/test_sim_integration.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_sim_integration.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/tcsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/tcsim_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/tcsim_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fetch/CMakeFiles/tcsim_fetch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tcsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/tcsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tcsim_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tcsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/tcsim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tcsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
