file(REMOVE_RECURSE
  "CMakeFiles/tcsim_tests.dir/test_bpred.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_bpred.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_common.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_common.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_core.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_core.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_fetch.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_fetch.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_isa.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_isa.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_memory.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_memory.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_node_tables.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_node_tables.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_sim_integration.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_sim_integration.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_trace.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/tcsim_tests.dir/test_workload.cc.o"
  "CMakeFiles/tcsim_tests.dir/test_workload.cc.o.d"
  "tcsim_tests"
  "tcsim_tests.pdb"
  "tcsim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcsim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
