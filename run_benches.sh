#!/bin/bash
# Runs every experiment binary, teeing combined output.
#
# Each exhibit fans its (benchmark, config) jobs across TCSIM_JOBS
# worker threads (default: all cores); results are identical at any
# job count. Per-exhibit wall-clock and per-run metrics (including
# simulated MIPS) are merged into BENCH_results.json so the perf
# trajectory is machine-readable.
#
# Usage: run_benches.sh [--long]
#   --long  raise the default instruction budget to 1M per run
#           (statistically meaningful sweeps; an explicit TCSIM_INSTS
#           still wins).
cd /root/repo

if [ "${1:-}" = "--long" ]; then
    export TCSIM_INSTS="${TCSIM_INSTS:-1000000}"
    shift
fi

results_dir=.bench_results.tmp
rm -rf "$results_dir"
mkdir -p "$results_dir"
: > bench_output.txt

total_start=$(date +%s)
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name=$(basename "$b")
    echo "### $name" | tee -a bench_output.txt
    start=$(date +%s)
    TCSIM_RESULTS_DIR="$results_dir" "$b" 2>>bench_stderr.log \
        | tee -a bench_output.txt
    end=$(date +%s)
    echo "### $name took $((end - start))s" | tee -a bench_output.txt
    echo | tee -a bench_output.txt
done
total_end=$(date +%s)
total=$((total_end - total_start))

# Merge the per-exhibit JSON fragments (one object per line each)
# into a single results file.
{
    printf '{"schema":"tcsim-bench-results-v1","jobs":"%s",' \
        "${TCSIM_JOBS:-auto}"
    printf '"total_wall_seconds":%d,"exhibits":[' "$total"
    first=1
    for f in "$results_dir"/*.json; do
        [ -f "$f" ] || continue
        [ $first -eq 1 ] || printf ','
        first=0
        tr -d '\n' < "$f"
    done
    printf ']}\n'
} > BENCH_results.json
rm -rf "$results_dir"

echo "ALL BENCHES COMPLETE in ${total}s (results: BENCH_results.json)"
