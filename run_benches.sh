#!/bin/bash
# Runs every experiment binary, teeing combined output.
cd /root/repo
: > bench_output.txt
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name=$(basename "$b")
    echo "### $name" | tee -a bench_output.txt
    "$b" 2>>bench_stderr.log | tee -a bench_output.txt
    echo | tee -a bench_output.txt
done
echo "ALL BENCHES COMPLETE"
