#!/bin/bash
# Runs every experiment binary, teeing combined output — or, with
# --sweep N, runs the (benchmark, config) matrix as N sharded worker
# processes through tools/tcsim_sweep with crash detection, bounded
# retry, and a byte-deterministic merge.
#
# Exhibit mode: each exhibit fans its (benchmark, config) jobs across
# TCSIM_JOBS worker threads (default: all cores); results are
# identical at any job count. Per-exhibit wall-clock and per-run
# metrics (including simulated MIPS) are merged into
# BENCH_results.json (schema tcsim-bench-exhibits-v1) so the perf
# trajectory is machine-readable.
#
# Sweep mode (--sweep N): shards the work-unit matrix across N
# tcsim_sweep worker processes writing atomic per-unit fragments, then
# retries any units lost to crashes or timeouts (round-robin
# worklists, up to TCSIM_SWEEP_RETRIES passes, per-unit timeout
# TCSIM_UNIT_TIMEOUT seconds), merges the fragments into
# SWEEP_results.json (schema tcsim-bench-results-v1 — byte-identical
# to a single-process run of the same matrix), and records sweep
# timing + artifact-cache statistics in BENCH_results.json. Generated
# program images and warmed predictor checkpoints are reused across
# workers and runs via the content-addressed cache in TCSIM_CACHE_DIR
# (default .tcsim_cache).
#
# Scheduler mode (--sched N): runs a deliberately skewed matrix (one
# cell gets ~10x the instruction budget via --insts-for) twice at
# equal worker count — once as N static --shard workers, once as N
# `tcsim_sweep --pull` workers against a tools/tcsim_sched instance
# (work-stealing dispatch + straggler re-dispatch) — asserts the two
# documents are byte-identical, and records both wall-clocks plus the
# scheduler counters in BENCH_results.json (section "sched"). The
# point of the exercise: static sharding strands the small units that
# share a shard with the skewed one, the work-stealing pool does not.
#
# Usage: run_benches.sh [--long] [--sweep N] [--sched N]
#                       [--inject-kill] [--warm-compare]
#                       [--sampled-errors] [--monitor]
#                       [--regress-against FILE]
#   --long          raise the default instruction budget to 1M per run
#                   (statistically meaningful sweeps; an explicit
#                   TCSIM_INSTS still wins).
#   --sweep N       sweep mode with N worker processes.
#   --sched N       scheduler-vs-static comparison with N workers
#                   each. Environment: TCSIM_SCHED_SKEW selects the
#                   skewed cell ("benchmark@config", default
#                   li@baseline — must name a cell of the matrix),
#                   TCSIM_SCHED_SKEW_FACTOR its budget multiplier
#                   (default 10), TCSIM_FARM_TOKEN the farm secret
#                   (generated if unset).
#   --inject-kill   (sweep mode) worker 0 SIGKILLs itself after one
#                   unit, exercising the crash-retry path (CI).
#   --warm-compare  (sweep mode) after the merge, re-run the matrix
#                   single-process against the now-warm artifact cache,
#                   assert the document is byte-identical, and record
#                   the cold-vs-warm wall-clock in BENCH_results.json.
#   --sampled-errors (sampled sweep mode) after the merge, run the
#                   sampled-vs-full error report (each unit simulated
#                   BOTH ways — expensive), fail if any unit's IPC or
#                   fetch-rate error exceeds TCSIM_ERROR_TOLERANCE (or
#                   its mispredict-rate error exceeds
#                   TCSIM_MISPREDICT_TOLERANCE), and embed the report
#                   in BENCH_results.json.
#   --monitor       (sweep mode) attach tools/tcsim_monitor to the
#                   farm for the duration of the sweep: live dashboard
#                   in .sweep.tmp/monitor.log, rolling
#                   tcsim-farm-status-v1 snapshots in FARM_status.json.
#                   Purely observational — the merged document is
#                   byte-identical with or without it.
#   --regress-against FILE
#                   (sweep mode) after the merge, gate
#                   SWEEP_results.json against the baseline results
#                   document FILE with tools/tcsim_regress; the
#                   verdict lands in REGRESSION_report.json and is
#                   embedded in BENCH_results.json. A regression
#                   (tcsim_regress exit 5) fails the run.
#
# Sweep-mode environment:
#   TCSIM_SWEEP_ARGS     extra tcsim_sweep matrix args, word-split
#                        (e.g. "--benchmarks compress,li --configs
#                        baseline,promotion-t64")
#   TCSIM_WARMUP         per-unit predictor warm-up instructions
#   TCSIM_SAMPLED_INTERVAL / TCSIM_SAMPLED_K
#                        enable SimPoint-style sampled execution: BBV
#                        interval length and max cluster count (both
#                        required together; interval must divide the
#                        budget)
#   TCSIM_ERROR_TOLERANCE max IPC / fetch-rate relative error for
#                        --sampled-errors (default 0.05)
#   TCSIM_MISPREDICT_TOLERANCE max mispredict-rate ABSOLUTE error for
#                        --sampled-errors (default 0.08 = 8 points;
#                        per-region predictor warm-up bias shifts the
#                        sampled rate by a few points regardless of
#                        the base rate, so the bound is absolute)
#   TCSIM_CACHE_DIR      artifact cache directory (default
#                        .tcsim_cache; empty string disables)
#   TCSIM_UNIT_TIMEOUT   per-unit timeout seconds (default 600)
#   TCSIM_SWEEP_RETRIES  retry passes after the first (default 2)
cd /root/repo || exit 1

sweep_shards=0
sched_workers=0
inject_kill=0
warm_compare=0
sampled_errors=0
monitor=0
regress_baseline=""
while [ $# -gt 0 ]; do
    case "$1" in
        --long)
            export TCSIM_INSTS="${TCSIM_INSTS:-1000000}"
            ;;
        --sweep)
            shift
            sweep_shards="$1"
            ;;
        --sched)
            shift
            sched_workers="$1"
            ;;
        --inject-kill)
            inject_kill=1
            ;;
        --warm-compare)
            warm_compare=1
            ;;
        --sampled-errors)
            sampled_errors=1
            ;;
        --monitor)
            monitor=1
            ;;
        --regress-against)
            shift
            regress_baseline="$1"
            ;;
        *)
            echo "unknown option: $1" >&2
            exit 1
            ;;
    esac
    shift
done

# ----------------------------------------------------------------------
# Scheduler mode: work-stealing dispatch vs static sharding on a
# deliberately skewed matrix.
# ----------------------------------------------------------------------
if [ "$sched_workers" -gt 0 ]; then
    sweep_bin=build/tools/tcsim_sweep
    sched_bin=build/tools/tcsim_sched
    for bin in "$sweep_bin" "$sched_bin"; do
        [ -x "$bin" ] || { echo "$bin not built" >&2; exit 1; }
    done
    if [ "$sched_workers" -lt 2 ]; then
        echo "--sched needs at least 2 workers" >&2
        exit 1
    fi

    insts="${TCSIM_INSTS:-200000}"
    skew_cell="${TCSIM_SCHED_SKEW:-li@baseline}"
    skew_factor="${TCSIM_SCHED_SKEW_FACTOR:-10}"
    cache_dir="${TCSIM_CACHE_DIR-.tcsim_cache}"
    export TCSIM_FARM_TOKEN="${TCSIM_FARM_TOKEN:-sched-$$-$(date +%s)}"

    # The skewed matrix: one cell gets skew_factor x the budget, so a
    # static partition strands whatever shares its shard. The matrix
    # is wide enough (16 units by default) that the skewed unit is
    # close to — not above — one worker's ideal share; that is the
    # regime where dispatch policy, not the critical path, decides
    # the makespan.
    # shellcheck disable=SC2206
    matrix_args=(${TCSIM_SWEEP_ARGS:---benchmarks
                  compress,li,go,gcc,ijpeg,m88ksim,perl,vortex
                  --configs baseline,promotion-t64})
    matrix_args+=(--insts "$insts"
                  --insts-for "$skew_cell=$((insts * skew_factor))")
    [ -n "${TCSIM_WARMUP:-}" ] && matrix_args+=(--warmup "$TCSIM_WARMUP")
    run_args=("${matrix_args[@]}")
    [ -n "$cache_dir" ] && run_args+=(--cache-dir "$cache_dir")

    sched_dir=.sched.tmp
    rm -rf "$sched_dir"
    mkdir -p "$sched_dir/static.frags" "$sched_dir/sched.frags"

    n_units=$("$sweep_bin" --list "${matrix_args[@]}" \
                  | sed -n 's/^matrix [0-9a-f]* (\([0-9]*\) units)$/\1/p')
    [ -n "$n_units" ] || { echo "cannot enumerate matrix" >&2; exit 1; }
    echo "sched: $n_units units, $sched_workers workers," \
         "cell $skew_cell skewed ${skew_factor}x"

    # Reference run: byte-identity oracle AND cache warm-up, so the
    # timed runs below compare dispatch policy, not artifact
    # generation luck.
    "$sweep_bin" "${run_args[@]}" --out "$sched_dir/reference.json" \
        > "$sched_dir/reference.log" 2>&1 || {
        echo "sched: reference run failed" >&2; exit 1; }

    echo "sched: static --shard $sched_workers baseline..."
    static_start=$(date +%s.%N)
    pids=()
    for i in $(seq 0 $((sched_workers - 1))); do
        "$sweep_bin" "${run_args[@]}" --shard "$i/$sched_workers" \
            --fragments-dir "$sched_dir/static.frags" \
            > "$sched_dir/static.$i.log" 2>&1 &
        pids+=($!)
    done
    for pid in "${pids[@]}"; do
        wait "$pid" || { echo "sched: static worker failed" >&2; exit 1; }
    done
    static_wall=$(date +%s.%N | awk -v s="$static_start" '{print $1 - s}')
    "$sweep_bin" "${run_args[@]}" --merge \
        --fragments-dir "$sched_dir/static.frags" \
        --out "$sched_dir/static.json" || exit 1
    cmp "$sched_dir/reference.json" "$sched_dir/static.json" || {
        echo "sched: static merge not byte-identical" >&2; exit 1; }

    echo "sched: work-stealing scheduler with $sched_workers workers..."
    sched_start=$(date +%s.%N)
    "$sched_bin" "${matrix_args[@]}" \
        --fragments-dir "$sched_dir/sched.frags" \
        --out "$sched_dir/sched.json" --port 0 \
        --port-file "$sched_dir/port" \
        --status-out "$sched_dir/status.json" \
        --max-seconds "${TCSIM_UNIT_TIMEOUT:-600}" \
        > "$sched_dir/sched.log" 2>&1 &
    sched_pid=$!
    for _ in $(seq 200); do
        [ -s "$sched_dir/port" ] && break
        kill -0 "$sched_pid" 2>/dev/null || {
            echo "sched: scheduler died before binding" >&2; exit 1; }
        sleep 0.05
    done
    url="http://127.0.0.1:$(cat "$sched_dir/port")"
    pids=()
    for i in $(seq 0 $((sched_workers - 1))); do
        "$sweep_bin" "${run_args[@]}" --pull "$url" --worker "pull$i" \
            > "$sched_dir/pull.$i.log" 2>&1 &
        pids+=($!)
    done
    wait "$sched_pid" || {
        echo "sched: scheduler failed (log: $sched_dir/sched.log)" >&2
        exit 1; }
    sched_wall=$(date +%s.%N | awk -v s="$sched_start" '{print $1 - s}')
    for pid in "${pids[@]}"; do wait "$pid" || true; done
    cmp "$sched_dir/reference.json" "$sched_dir/sched.json" || {
        echo "sched: scheduled merge not byte-identical" >&2; exit 1; }

    speedup=$(awk -v a="$static_wall" -v b="$sched_wall" \
                  'BEGIN {printf "%.3f", a / b}')
    counters=$(python3 - "$sched_dir/status.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
print(doc["redispatches"], doc["leases_expired"], doc["duplicates"])
EOF
    )
    read -r redispatches leases_expired duplicates <<< "$counters"
    {
        printf '{"schema":"tcsim-bench-exhibits-v1",'
        printf '"sched":{"workers":%d,"units":%d,' \
            "$sched_workers" "$n_units"
        printf '"skew_cell":"%s","skew_factor":%d,' \
            "$skew_cell" "$skew_factor"
        printf '"static_wall_seconds":%.3f,"sched_wall_seconds":%.3f,' \
            "$static_wall" "$sched_wall"
        printf '"speedup":%s,' "$speedup"
        printf '"redispatches":%d,"leases_expired":%d,"duplicates":%d,' \
            "$redispatches" "$leases_expired" "$duplicates"
        printf '"byte_identical":true},"exhibits":[]}\n'
    } > BENCH_results.json
    echo "sched: static ${static_wall}s vs scheduled ${sched_wall}s" \
         "(speedup ${speedup}x, results: BENCH_results.json)"
    rm -rf "$sched_dir"
    if ! awk -v s="$speedup" 'BEGIN {exit !(s > 1.0)}'; then
        echo "SCHED FAILED: work stealing did not beat static" \
             "sharding on the skewed matrix" >&2
        exit 3
    fi
    echo "SCHED COMPLETE: work stealing beats static sharding" \
         "${speedup}x on the skewed matrix"
    exit 0
fi

# ----------------------------------------------------------------------
# Sweep mode.
# ----------------------------------------------------------------------
if [ "$sweep_shards" -gt 0 ]; then
    sweep_bin=build/tools/tcsim_sweep
    [ -x "$sweep_bin" ] || { echo "$sweep_bin not built" >&2; exit 1; }

    unit_timeout="${TCSIM_UNIT_TIMEOUT:-600}"
    max_retries="${TCSIM_SWEEP_RETRIES:-2}"
    cache_dir="${TCSIM_CACHE_DIR-.tcsim_cache}"

    # Matrix arguments shared verbatim by workers, check and merge —
    # unit hashes only line up when every invocation sees the same
    # matrix. TCSIM_SWEEP_ARGS is word-split by design.
    # shellcheck disable=SC2206
    matrix_args=(${TCSIM_SWEEP_ARGS-})
    [ -n "${TCSIM_INSTS:-}" ] && matrix_args+=(--insts "$TCSIM_INSTS")
    [ -n "${TCSIM_WARMUP:-}" ] && matrix_args+=(--warmup "$TCSIM_WARMUP")
    if [ -n "${TCSIM_SAMPLED_INTERVAL:-}" ] || \
       [ -n "${TCSIM_SAMPLED_K:-}" ]; then
        if [ -z "${TCSIM_SAMPLED_INTERVAL:-}" ] || \
           [ -z "${TCSIM_SAMPLED_K:-}" ]; then
            echo "TCSIM_SAMPLED_INTERVAL and TCSIM_SAMPLED_K must be" \
                 "set together" >&2
            exit 1
        fi
        matrix_args+=(--sampled-interval "$TCSIM_SAMPLED_INTERVAL"
                      --sampled-max-k "$TCSIM_SAMPLED_K")
    fi
    # The monitor needs the matrix (to know the denominator and which
    # fragments belong to this sweep) but not the cache arguments.
    monitor_args=("${matrix_args[@]}")
    [ -n "$cache_dir" ] && matrix_args+=(--cache-dir "$cache_dir")

    sweep_dir=.sweep.tmp
    frags="$sweep_dir/fragments"
    rm -rf "$sweep_dir"
    mkdir -p "$frags"

    monitor_pid=""
    if [ "$monitor" -eq 1 ]; then
        monitor_bin=build/tools/tcsim_monitor
        [ -x "$monitor_bin" ] || {
            echo "$monitor_bin not built" >&2; exit 1; }
        "$monitor_bin" --fragments-dir "$frags" "${monitor_args[@]}" \
            --interval 1 --status-out FARM_status.json \
            > "$sweep_dir/monitor.log" 2>&1 &
        monitor_pid=$!
        echo "sweep: monitor attached (pid $monitor_pid," \
             "dashboard: $sweep_dir/monitor.log," \
             "snapshots: FARM_status.json)"
    fi

    n_units=$("$sweep_bin" --list "${matrix_args[@]}" \
                  | sed -n 's/^matrix [0-9a-f]* (\([0-9]*\) units)$/\1/p')
    [ -n "$n_units" ] || { echo "cannot enumerate matrix" >&2; exit 1; }
    units_per_shard=$(( (n_units + sweep_shards - 1) / sweep_shards ))
    echo "sweep: $n_units units across $sweep_shards workers" \
         "(per-unit timeout ${unit_timeout}s)"

    total_start=$(date +%s)

    # Pass 0: one shard per worker; the process timeout is the
    # per-unit budget times the shard's unit count.
    pids=()
    for i in $(seq 0 $((sweep_shards - 1))); do
        worker_args=(--shard "$i/$sweep_shards" --fragments-dir "$frags"
                     --timing-out "$sweep_dir/timing.$i.json")
        if [ "$inject_kill" -eq 1 ] && [ "$i" -eq 0 ]; then
            worker_args+=(--die-after 1)
        fi
        timeout $((unit_timeout * units_per_shard)) \
            "$sweep_bin" "${matrix_args[@]}" "${worker_args[@]}" \
            > "$sweep_dir/worker.$i.log" 2>&1 &
        pids+=($!)
    done
    crashed=0
    timeout_killed_workers=0
    for i in $(seq 0 $((sweep_shards - 1))); do
        code=0
        wait "${pids[$i]}" || code=$?
        if [ "$code" -ne 0 ]; then
            echo "sweep: worker $i exited with code $code" \
                 "(crash or timeout; its missing units will be retried)"
            crashed=$((crashed + 1))
            # timeout(1) reports an expired timer with 124; other
            # codes (e.g. 137 from --inject-kill's SIGKILL) are
            # crashes, not timeouts.
            if [ "$code" -eq 124 ]; then
                timeout_killed_workers=$((timeout_killed_workers + 1))
            fi
        fi
    done

    # Bounded retry: split the missing units round-robin into fresh
    # worklists and re-run each unit under its own timeout. Per-unit
    # retry counts accumulate in the main shell; per-unit timeout
    # kills are appended to a file because the workers are subshells.
    retries_used=0
    declare -A unit_retries=()
    : > "$sweep_dir/timeout_kills.txt"
    for pass in $(seq 1 "$max_retries"); do
        # --missing-out writes the retry worklist atomically (the
        # stdout listing is kept for the log only).
        "$sweep_bin" --check --fragments-dir "$frags" \
            "${matrix_args[@]}" \
            --missing-out "$sweep_dir/missing.txt" \
            > "$sweep_dir/check.log" 2>&1 && break
        n_missing=$(wc -l < "$sweep_dir/missing.txt")
        echo "sweep: retry pass $pass for $n_missing missing units"
        retries_used=$pass
        for i in $(seq 0 $((sweep_shards - 1))); do
            : > "$sweep_dir/retry.$i.txt"
        done
        j=0
        while read -r h; do
            [ -n "$h" ] || continue
            unit_retries[$h]=$(( ${unit_retries[$h]:-0} + 1 ))
            echo "$h" >> "$sweep_dir/retry.$((j % sweep_shards)).txt"
            j=$((j + 1))
        done < "$sweep_dir/missing.txt"
        pids=()
        for i in $(seq 0 $((sweep_shards - 1))); do
            [ -s "$sweep_dir/retry.$i.txt" ] || continue
            (
                while read -r h; do
                    [ -n "$h" ] || continue
                    echo "$h" > "$sweep_dir/retry.$i.one"
                    rc=0
                    timeout "$unit_timeout" "$sweep_bin" \
                        "${matrix_args[@]}" \
                        --worklist "$sweep_dir/retry.$i.one" \
                        --fragments-dir "$frags" \
                        >> "$sweep_dir/worker.$i.log" 2>&1 || rc=$?
                    if [ "$rc" -eq 124 ]; then
                        echo "$h" >> "$sweep_dir/timeout_kills.txt"
                    fi
                done < "$sweep_dir/retry.$i.txt"
            ) &
            pids+=($!)
        done
        for pid in "${pids[@]}"; do wait "$pid" || true; done
    done

    if ! "$sweep_bin" --check --fragments-dir "$frags" \
             "${matrix_args[@]}" > /dev/null 2>&1; then
        echo "sweep: units still missing after $max_retries retries:" >&2
        "$sweep_bin" --check --fragments-dir "$frags" \
            "${matrix_args[@]}" 2>&1 >&2 | sed 's/^/  /' >&2
        exit 1
    fi

    "$sweep_bin" --merge --fragments-dir "$frags" "${matrix_args[@]}" \
        --out SWEEP_results.json || exit 1
    total=$(( $(date +%s) - total_start ))

    if [ -n "$monitor_pid" ]; then
        kill "$monitor_pid" 2> /dev/null || true
        wait "$monitor_pid" 2> /dev/null || true
        # A fast sweep can finish between monitor polls; refresh the
        # snapshot once post-merge so FARM_status.json always records
        # the final state instead of whatever the last poll caught.
        "$sweep_bin" --status --fragments-dir "$frags" \
            "${monitor_args[@]}" --status-out FARM_status.json \
            > "$sweep_dir/final_status.txt" 2>&1 || true
        echo "sweep: final farm view:"
        sed 's/^/  /' "$sweep_dir/final_status.txt"
    fi

    # Optional perf-regression gate against a prior merged document.
    regress_json=""
    if [ -n "$regress_baseline" ]; then
        regress_bin=build/tools/tcsim_regress
        [ -x "$regress_bin" ] || {
            echo "$regress_bin not built" >&2; exit 1; }
        [ -f "$regress_baseline" ] || {
            echo "baseline $regress_baseline not found" >&2; exit 1; }
        regress_code=0
        "$regress_bin" --baseline "$regress_baseline" \
            --current SWEEP_results.json \
            --out REGRESSION_report.json || regress_code=$?
        if [ "$regress_code" -ne 0 ] && [ "$regress_code" -ne 5 ]; then
            echo "tcsim_regress failed (exit $regress_code)" >&2
            exit 1
        fi
        regress_json=$(printf '"regression":%s,' \
            "$(tr -d '\n' < REGRESSION_report.json)")
        if [ "$regress_code" -eq 5 ]; then
            echo "sweep: PERF REGRESSION against $regress_baseline" \
                 "(details: REGRESSION_report.json)" >&2
            # Still emit BENCH_results.json below so the report is
            # preserved, then fail.
        else
            echo "sweep: no regression against $regress_baseline"
        fi
    fi

    # Optional warm rerun: with every program image and predictor
    # checkpoint now cached, a single-process pass must be faster AND
    # byte-identical — cache hits may only ever change wall-clock.
    warm_json=""
    if [ "$warm_compare" -eq 1 ] && [ -n "$cache_dir" ]; then
        warm_start=$(date +%s.%N)
        "$sweep_bin" "${matrix_args[@]}" \
            --out "$sweep_dir/warm.json" \
            --timing-out "$sweep_dir/warm.timing.json" \
            > "$sweep_dir/warm.log" 2>&1 || exit 1
        warm_end=$(date +%s.%N)
        if ! cmp -s SWEEP_results.json "$sweep_dir/warm.json"; then
            echo "warm rerun changed simulation results" >&2
            exit 1
        fi
        warm_json=$(printf \
            '"warm_rerun":{"wall_seconds":%s,"byte_identical":true,"timing":%s},' \
            "$(echo "$warm_end $warm_start" | awk '{printf "%.3f", $1-$2}')" \
            "$(tr -d '\n' < "$sweep_dir/warm.timing.json")")
        echo "sweep: warm rerun byte-identical"
    fi

    # Optional sampled-vs-full error report: re-simulates every unit
    # both ways, so only ask for it on matrices sized for calibration.
    error_json=""
    if [ "$sampled_errors" -eq 1 ]; then
        tolerance="${TCSIM_ERROR_TOLERANCE:-0.05}"
        mispredict_tolerance="${TCSIM_MISPREDICT_TOLERANCE:-0.08}"
        "$sweep_bin" "${matrix_args[@]}" \
            --error-out "$sweep_dir/errors.json" \
            --error-tolerance "$tolerance" \
            --mispredict-tolerance "$mispredict_tolerance" \
            > "$sweep_dir/errors.log" 2>&1
        error_code=$?
        if [ "$error_code" -ne 0 ] && [ "$error_code" -ne 4 ]; then
            echo "sampling-error report failed (exit $error_code)" >&2
            cat "$sweep_dir/errors.log" >&2
            exit 1
        fi
        cp "$sweep_dir/errors.json" SAMPLING_errors.json
        error_json=$(printf '"sampling_error":%s,' \
            "$(tr -d '\n' < "$sweep_dir/errors.json")")
        if [ "$error_code" -eq 4 ]; then
            echo "sweep: sampling error exceeds tolerance $tolerance" \
                 "(mispredict $mispredict_tolerance)" >&2
            exit 1
        fi
        echo "sweep: sampling errors within tolerance $tolerance" \
             "(mispredict $mispredict_tolerance, SAMPLING_errors.json)"
    fi

    # BENCH_results.json: sweep timing + per-worker cache statistics
    # (the canonical simulation numbers live in SWEEP_results.json;
    # everything here is wall-clock, which is why it is kept apart).
    {
        printf '{"schema":"tcsim-bench-exhibits-v1",'
        printf '"sweep":{"shards":%d,"units":%d,' \
            "$sweep_shards" "$n_units"
        printf '"total_wall_seconds":%d,"retry_passes":%d,' \
            "$total" "$retries_used"
        printf '"crashed_workers":%d,' "$crashed"
        printf '"timeout_killed_workers":%d,' "$timeout_killed_workers"
        printf '"monitored":%s,' \
            "$([ "$monitor" -eq 1 ] && echo true || echo false)"
        # Per-unit retry counts (hash -> times it landed on a retry
        # worklist) and units whose retry was cut down by the per-unit
        # timeout. Empty when pass 0 covered everything.
        printf '"unit_retries":['
        first=1
        for h in "${!unit_retries[@]}"; do
            [ $first -eq 1 ] || printf ','
            first=0
            printf '{"hash":"%s","retries":%d}' "$h" \
                "${unit_retries[$h]}"
        done
        printf '],"timeout_killed_units":['
        first=1
        if [ -f "$sweep_dir/timeout_kills.txt" ]; then
            while read -r h; do
                [ -n "$h" ] || continue
                [ $first -eq 1 ] || printf ','
                first=0
                printf '"%s"' "$h"
            done < "$sweep_dir/timeout_kills.txt"
        fi
        printf '],%s%s%s"workers":[' \
            "$warm_json" "$error_json" "$regress_json"
        first=1
        for f in "$sweep_dir"/timing.*.json; do
            [ -f "$f" ] || continue
            [ $first -eq 1 ] || printf ','
            first=0
            tr -d '\n' < "$f"
        done
        printf ']},"exhibits":[]}\n'
    } > BENCH_results.json
    rm -rf "$sweep_dir"
    if [ -n "$regress_baseline" ] && [ "${regress_code:-0}" -eq 5 ]; then
        echo "SWEEP FAILED perf-regression gate in ${total}s" \
             "(report: REGRESSION_report.json)" >&2
        exit 5
    fi
    echo "SWEEP COMPLETE in ${total}s" \
         "(results: SWEEP_results.json, timing: BENCH_results.json)"
    exit 0
fi

# ----------------------------------------------------------------------
# Exhibit mode.
# ----------------------------------------------------------------------
results_dir=.bench_results.tmp
rm -rf "$results_dir"
mkdir -p "$results_dir"
: > bench_output.txt

total_start=$(date +%s)
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name=$(basename "$b")
    echo "### $name" | tee -a bench_output.txt
    start=$(date +%s)
    TCSIM_RESULTS_DIR="$results_dir" "$b" 2>>bench_stderr.log \
        | tee -a bench_output.txt
    end=$(date +%s)
    echo "### $name took $((end - start))s" | tee -a bench_output.txt
    echo | tee -a bench_output.txt
done
total_end=$(date +%s)
total=$((total_end - total_start))

# Merge the per-exhibit JSON fragments (one object per line each)
# into a single results file.
{
    printf '{"schema":"tcsim-bench-exhibits-v1","jobs":"%s",' \
        "${TCSIM_JOBS:-auto}"
    printf '"total_wall_seconds":%d,"exhibits":[' "$total"
    first=1
    for f in "$results_dir"/*.json; do
        [ -f "$f" ] || continue
        [ $first -eq 1 ] || printf ','
        first=0
        tr -d '\n' < "$f"
    done
    printf ']}\n'
} > BENCH_results.json
rm -rf "$results_dir"

echo "ALL BENCHES COMPLETE in ${total}s (results: BENCH_results.json)"
