#!/bin/bash
# End-to-end chaos smoke test for the sweep scheduler, driven by ctest:
#
#  1. single-process reference document,
#  2. fragments dir pre-seeded with garbage: a stale fragment from a
#     DIFFERENT matrix (old config fingerprint) and a corrupt object —
#     the scheduler's resume scan must ignore both,
#  3. tcsim_sched + 3 pulled workers, one SIGKILLed mid-lease
#     (--die-mid-unit) and one injected straggler (--inject-slow-ms):
#     the schedule must recover both units (lease expiry / speculative
#     re-dispatch), with at least one re-dispatch observed,
#  4. the streamed-merge document must be byte-identical to the
#     single-process reference, and the status / partial / manifest
#     documents must validate against their schemas,
#  5. a scheduler restart over the finished store resumes to done
#     without dispatching anything.
#
# Usage: sched_smoke.sh <cmake-build-dir>
set -eu

sweep="$1/tools/tcsim_sweep"
sched="$1/tools/tcsim_sched"
validate="$(cd "$(dirname "$0")/.." && pwd)/tools/validate_obs.py"
for bin in "$sweep" "$sched"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"; kill $(jobs -p) 2>/dev/null || true' EXIT

export TCSIM_FARM_TOKEN=sched-smoke-secret

matrix=(--benchmarks compress,li --configs baseline,promotion-t64
        --insts 20000 --warmup 5000)
margs=("${matrix[@]}" --cache-dir "$scratch/cache")

echo "== single-process reference =="
"$sweep" "${margs[@]}" --out "$scratch/single.json"

echo "== pre-seed chaos: stale fragment + corrupt object =="
# A fragment from a different matrix (other insts budget => other
# config fingerprint and content hash): valid bytes, wrong sweep.
"$sweep" --benchmarks compress --configs baseline --insts 10000 \
         --cache-dir "$scratch/cache" --shard 0/1 \
         --fragments-dir "$scratch/frags"
stale=$(ls "$scratch/frags"/*.json)
[ -n "$stale" ] || { echo "no stale fragment seeded" >&2; exit 1; }
echo '{"schema": "tcsim-bench-fragment-v1", "truncated' \
    > "$scratch/frags/0123456789abcdef.json"

echo "== truncated-mid-record fragment: --check and resume agree =="
# A fragment truncated mid-record into VALID JSON (schema and unit
# header intact, result record incomplete) under a REAL unit hash of
# this matrix — e.g. a torn upload from a dying worker. Both the
# launcher's --check worklist and the scheduler's resume scan must
# reject it with the same validity predicate, and the scheduler must
# heal the store object once the unit really completes.
poison=$("$sweep" --list "${matrix[@]}" | awk 'NR==2 {print $2}')
poison_id=$("$sweep" --list "${matrix[@]}" | awk 'NR==2 {print $3}')
[ -n "$poison" ] || { echo "cannot list the matrix" >&2; exit 1; }
printf '%s\n' "{\"schema\": \"tcsim-bench-fragment-v1\",
  \"unit\": {\"index\": 0, \"id\": \"$poison_id\",
             \"hash\": \"$poison\", \"benchmark\": \"compress\",
             \"config\": \"baseline\", \"insts\": 20000,
             \"warmup\": 5000},
  \"result\": {\"benchmark\": \"compress\", \"config\": \"baseline\",
               \"instructions\": 20000}}" \
    > "$scratch/frags/$poison.json"
if "$sweep" --check "${matrix[@]}" --fragments-dir "$scratch/frags" \
        --missing-out "$scratch/missing.txt" > /dev/null 2>&1; then
    echo "--check accepted a truncated-mid-record fragment" >&2
    exit 1
fi
grep -q "^$poison\$" "$scratch/missing.txt" || {
    echo "--check did not put the truncated unit on the retry" \
         "worklist" >&2; exit 1; }

echo "== scheduler + kill + straggler chaos =="
"$sched" "${matrix[@]}" --fragments-dir "$scratch/frags" \
         --out "$scratch/sched.json" --port 0 \
         --port-file "$scratch/port" --lease-timeout 4 \
         --straggler-k 2 --min-median-samples 2 \
         --partial-out "$scratch/partial.json" \
         --status-out "$scratch/status.json" \
         --manifest-out "$scratch/manifest.json" \
         --max-seconds 120 &
sched_pid=$!
for _ in $(seq 100); do
    [ -s "$scratch/port" ] && break
    kill -0 "$sched_pid" 2>/dev/null || {
        echo "scheduler died before binding" >&2; exit 1; }
    sleep 0.1
done
url="http://127.0.0.1:$(cat "$scratch/port")"

# w1 SIGKILLs itself right after taking its first lease; its unit must
# be recovered. Expected to die by signal, so `if` guards set -e.
if "$sweep" "${matrix[@]}" --pull "$url" --worker w1 \
            --die-mid-unit 1 --heartbeat 0.5 2> "$scratch/w1.log"; then
    echo "w1 should have been SIGKILLed" >&2
    exit 1
fi
# w2 stalls 6s on every unit (>> 2 x median): a live straggler whose
# units get speculatively re-dispatched. w3 is healthy and steals the
# rest of the pool. Workers share the reference run's artifact cache.
"$sweep" "${margs[@]}" --pull "$url" --worker w2 --heartbeat 0.5 \
         --inject-slow-ms 6000 > "$scratch/w2.log" 2>&1 &
"$sweep" "${margs[@]}" --pull "$url" --worker w3 --heartbeat 0.5 \
         > "$scratch/w3.log" 2>&1 &
wait "$sched_pid"
wait

echo "== merged document is byte-identical =="
cmp "$scratch/single.json" "$scratch/sched.json"

echo "== scheduler healed the poisoned store object =="
# /complete must have overwritten the truncated fragment with the
# verified payload (first-wins applies only to VALID duplicates):
# post-run, no unit may land on the retry worklist. The pre-seeded
# corrupt/stale garbage still trips --check's exit code by design,
# so the assertion is on the worklist, not the exit status.
"$sweep" --check "${matrix[@]}" --fragments-dir "$scratch/frags" \
    --missing-out "$scratch/missing2.txt" > /dev/null 2>&1 || true
if [ -s "$scratch/missing2.txt" ]; then
    echo "store still rejects completed units after healing:" >&2
    cat "$scratch/missing2.txt" >&2
    exit 1
fi

echo "== re-dispatch fired and documents validate =="
python3 "$validate" --sched-status "$scratch/status.json" \
        --partial "$scratch/partial.json" \
        --store-manifest "$scratch/manifest.json" \
        --results "$scratch/sched.json"
python3 - "$scratch/status.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["completed"] == doc["units"] == 4, doc
assert doc["redispatches"] >= 1, "straggler re-dispatch never fired"
assert doc["leases_expired"] + doc["redispatches"] >= 2, \
    "killed worker's unit was neither expired nor re-dispatched"
EOF

echo "== restart over the finished store resumes to done =="
"$sched" "${matrix[@]}" --fragments-dir "$scratch/frags" \
         --out "$scratch/resumed.json" --port 0 \
         --port-file "$scratch/port2" --max-seconds 30 \
         --status-out "$scratch/status2.json"
cmp "$scratch/single.json" "$scratch/resumed.json"
python3 - "$scratch/status2.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["completed"] == doc["units"] == 4, doc
assert doc["leases_issued"] == 0, "resume dispatched work needlessly"
EOF

echo "sched smoke OK"
