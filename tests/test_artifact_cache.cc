/**
 * @file
 * Tests for the content-addressed artifact cache: memoization,
 * invalidation by key (a generator-version or fingerprint change must
 * force regeneration), rejection of corrupted or mislabeled files,
 * and the key-collision guard.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/artifact_cache.h"
#include "bench/harness.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;
using namespace tcsim::bench;

class ArtifactCacheTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = testing::TempDir() + "/tcsim_artifact_cache_test";
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TEST_F(ArtifactCacheTest, DisabledCacheAlwaysProduces)
{
    ArtifactCache cache; // no directory: disabled
    EXPECT_FALSE(cache.enabled());
    int calls = 0;
    const auto produce = [&calls] {
        ++calls;
        return std::string("payload");
    };
    EXPECT_EQ(cache.getOrCreate("k", "key", produce), "payload");
    EXPECT_EQ(cache.getOrCreate("k", "key", produce), "payload");
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().stores, 0u);
}

TEST_F(ArtifactCacheTest, StoreThenLoadRoundTrips)
{
    ArtifactCache cache(dir_);
    const std::string payload = std::string("bytes\0with nul", 14);
    EXPECT_FALSE(cache.load("prog", "key-a").has_value());
    ASSERT_TRUE(cache.store("prog", "key-a", payload));
    const auto got = cache.load("prog", "key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    const ArtifactCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ArtifactCacheTest, GetOrCreateMemoizesAcrossInstances)
{
    int calls = 0;
    const auto produce = [&calls] {
        ++calls;
        return std::string("expensive");
    };
    {
        ArtifactCache cache(dir_);
        EXPECT_EQ(cache.getOrCreate("prog", "key", produce), "expensive");
    }
    {
        // A second "process" with the same cache directory hits disk.
        ArtifactCache cache(dir_);
        EXPECT_EQ(cache.getOrCreate("prog", "key", produce), "expensive");
        EXPECT_EQ(cache.stats().hits, 1u);
    }
    EXPECT_EQ(calls, 1);
}

TEST_F(ArtifactCacheTest, KeyChangeForcesRegeneration)
{
    // The invalidation contract: artifacts are addressed purely by
    // key, and keys embed every version/fingerprint input — so a
    // bumped generator version or changed config hash is simply a new
    // key, and the stale artifact is never consulted.
    ArtifactCache cache(dir_);
    int calls = 0;
    const auto produce = [&calls] {
        ++calls;
        return std::string("v") + std::to_string(calls);
    };
    EXPECT_EQ(cache.getOrCreate("prog", "program:v1:x", produce), "v1");
    EXPECT_EQ(cache.getOrCreate("prog", "program:v2:x", produce), "v2");
    EXPECT_EQ(calls, 2);
    // Both versions coexist; neither shadows the other.
    EXPECT_EQ(cache.load("prog", "program:v1:x"), "v1");
    EXPECT_EQ(cache.load("prog", "program:v2:x"), "v2");
}

TEST_F(ArtifactCacheTest, ProgramKeyTracksProfileAndVersion)
{
    // Any profile change must change the program-image key, or a
    // stale image could be replayed for an edited benchmark.
    workload::BenchmarkProfile profile = workload::benchmarkSuite()[0];
    const std::string base_key = programArtifactKey(profile);
    EXPECT_NE(base_key.find("program:v"), std::string::npos);

    workload::BenchmarkProfile reseeded = profile;
    reseeded.seed += 1;
    EXPECT_NE(programArtifactKey(reseeded), base_key);

    workload::BenchmarkProfile resized = profile;
    resized.numFunctions += 1;
    EXPECT_NE(programArtifactKey(resized), base_key);

    EXPECT_EQ(programArtifactKey(profile), base_key); // stable
}

TEST_F(ArtifactCacheTest, CorruptedArtifactRejectedAndDeleted)
{
    ArtifactCache cache(dir_);
    ASSERT_TRUE(cache.store("prog", "key", "payload-bytes"));
    const std::string path = cache.pathFor("prog", "key");

    // Flip one payload byte: the checksum must catch it before any
    // payload parser (loadProgram aborts on malformed images) runs.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        bytes = std::move(ss).str();
    }
    bytes.back() ^= 0x01;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    EXPECT_FALSE(cache.load("prog", "key").has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    // The corrupt file is dropped so regeneration can replace it.
    EXPECT_FALSE(std::filesystem::exists(path));
    int calls = 0;
    EXPECT_EQ(cache.getOrCreate("prog", "key",
                                [&calls] {
                                    ++calls;
                                    return std::string("fresh");
                                }),
              "fresh");
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(cache.load("prog", "key"), "fresh");
}

TEST_F(ArtifactCacheTest, TruncatedArtifactRejected)
{
    ArtifactCache cache(dir_);
    ASSERT_TRUE(cache.store("prog", "key", "a longer payload string"));
    const std::string path = cache.pathFor("prog", "key");
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 4);
    EXPECT_FALSE(cache.load("prog", "key").has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST_F(ArtifactCacheTest, EmbeddedKeyGuardsHashCollisions)
{
    // Simulate a key-hash collision by placing key-a's wrapper file at
    // key-b's path: the embedded key comparison must reject it rather
    // than serve the wrong artifact.
    ArtifactCache cache(dir_);
    ASSERT_TRUE(cache.store("prog", "key-a", "payload-a"));
    std::filesystem::copy_file(cache.pathFor("prog", "key-a"),
                               cache.pathFor("prog", "key-b"));
    EXPECT_FALSE(cache.load("prog", "key-b").has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    // key-a itself is untouched and still serves.
    EXPECT_EQ(cache.load("prog", "key-a"), "payload-a");
}

} // namespace
