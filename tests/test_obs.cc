/**
 * @file
 * Tests for the observability layer (src/obs): trace-point category
 * filtering, sink formats, interval metrics, self-profiling, and the
 * contract that attaching any of them never changes simulation
 * results.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/intervals.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;
using obs::Category;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
tempPath(const char *name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

// ----------------------------------------------------------------------
// Trace points.
// ----------------------------------------------------------------------

TEST(Trace, CategoryNamesRoundTrip)
{
    for (unsigned c = 0; c < obs::kNumCategories; ++c) {
        const auto cat = static_cast<Category>(c);
        Category parsed;
        ASSERT_TRUE(obs::categoryFromName(obs::categoryName(cat), parsed));
        EXPECT_EQ(parsed, cat);
    }
    Category parsed;
    EXPECT_FALSE(obs::categoryFromName("bogus", parsed));
}

TEST(Trace, ParseCategoryList)
{
    std::uint32_t mask = 0;
    ASSERT_TRUE(obs::parseCategoryList("tc,promote", mask));
    EXPECT_EQ(mask, (1u << static_cast<unsigned>(Category::TC)) |
                        (1u << static_cast<unsigned>(Category::Promote)));

    ASSERT_TRUE(obs::parseCategoryList("all", mask));
    EXPECT_EQ(mask, (1u << obs::kNumCategories) - 1);

    std::string error;
    EXPECT_FALSE(obs::parseCategoryList("tc,nope", mask, &error));
    EXPECT_NE(error.find("nope"), std::string::npos);
}

TEST(Trace, TpointFiltersByCategoryAndStampsClock)
{
    obs::Tracer tracer;
    auto sink = std::make_unique<obs::VectorSink>();
    obs::VectorSink *vec = sink.get();
    tracer.addSink(std::move(sink));
    tracer.enable(Category::TC);

    std::uint64_t cycle = 41;
    tracer.attachClock(&cycle);
    ++cycle;

    obs::Tracer *tp = &tracer;
    TCSIM_TPOINT(tp, TC, "hit", "addr=0x%x", 0x40);
    TCSIM_TPOINT(tp, Fetch, "step", "i=%d", 7); // filtered out
    obs::Tracer *null_tracer = nullptr;
    TCSIM_TPOINT(null_tracer, TC, "hit", "addr=0x%x", 0x44); // no-op

    ASSERT_EQ(vec->records().size(), 1u);
    EXPECT_EQ(vec->records()[0].cycle, 42u);
    EXPECT_EQ(vec->records()[0].cat, Category::TC);
    EXPECT_EQ(vec->records()[0].event, "hit");
    EXPECT_EQ(vec->records()[0].detail, "addr=0x40");
    EXPECT_EQ(tracer.emitted(), 1u);
}

TEST(Trace, DisabledTpointDoesNotEvaluateArguments)
{
    obs::Tracer tracer; // no categories enabled
    int evaluations = 0;
    const auto touch = [&evaluations]() {
        ++evaluations;
        return 0;
    };
    obs::Tracer *tp = &tracer;
    TCSIM_TPOINT(tp, TC, "hit", "v=%d", touch());
    EXPECT_EQ(evaluations, 0);
    tracer.enable(Category::TC);
    TCSIM_TPOINT(tp, TC, "hit", "v=%d", touch());
    EXPECT_EQ(evaluations, 1);
}

TEST(Trace, SinkFormatInference)
{
    EXPECT_EQ(obs::inferSinkFormat("x.jsonl"), obs::SinkFormat::Jsonl);
    EXPECT_EQ(obs::inferSinkFormat("x.json"), obs::SinkFormat::Chrome);
    EXPECT_EQ(obs::inferSinkFormat("x.log"), obs::SinkFormat::Text);
    EXPECT_EQ(obs::inferSinkFormat(""), obs::SinkFormat::Text);

    obs::SinkFormat format;
    ASSERT_TRUE(obs::sinkFormatFromName("chrome", format));
    EXPECT_EQ(format, obs::SinkFormat::Chrome);
    EXPECT_FALSE(obs::sinkFormatFromName("xml", format));
}

TEST(Trace, JsonlSinkSchemaAndEscaping)
{
    const std::string path = tempPath("tcsim_test_trace.jsonl");
    std::string error;
    auto sink = obs::makeSink(obs::SinkFormat::Jsonl, path, &error);
    ASSERT_NE(sink, nullptr) << error;

    obs::Tracer tracer;
    tracer.enableAll();
    std::uint64_t cycle = 9;
    tracer.attachClock(&cycle);
    tracer.addSink(std::move(sink));
    tracer.emit(Category::Promote, "promote", "q=\"x\" b=\\ t=\ty");
    tracer.flush();

    EXPECT_EQ(slurp(path),
              "{\"t\":9,\"cat\":\"promote\",\"ev\":\"promote\","
              "\"detail\":\"q=\\\"x\\\" b=\\\\ t=\\ty\"}\n");
    std::remove(path.c_str());
}

TEST(Trace, ChromeSinkWritesHeaderAndFooter)
{
    const std::string path = tempPath("tcsim_test_trace.json");
    {
        obs::Tracer tracer;
        tracer.enableAll();
        auto sink = obs::makeSink(obs::SinkFormat::Chrome, path, nullptr);
        ASSERT_NE(sink, nullptr);
        tracer.addSink(std::move(sink));
        tracer.emit(Category::TC, "hit", "addr=0x40");
        tracer.emit(Category::TC, "miss", "addr=0x80");
        tracer.flush();
        tracer.flush(); // footer must be written exactly once
    }
    const std::string text = slurp(path);
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(text.find("\"name\":\"hit\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"miss\""), std::string::npos);
    EXPECT_EQ(text.find("]}"), text.rfind("]}"));
    std::remove(path.c_str());
}

// ----------------------------------------------------------------------
// Interval metrics.
// ----------------------------------------------------------------------

TEST(Intervals, NextBoundaryAfter)
{
    obs::IntervalRecorder rec(1000);
    EXPECT_EQ(rec.nextBoundaryAfter(0), 1000u);
    EXPECT_EQ(rec.nextBoundaryAfter(999), 1000u);
    EXPECT_EQ(rec.nextBoundaryAfter(1000), 2000u);
    EXPECT_EQ(rec.nextBoundaryAfter(1001), 2000u);
}

TEST(Intervals, FinishDeduplicatesFinalSample)
{
    obs::IntervalRecorder rec(100);
    obs::IntervalCounters c;
    c.cycles = 50;
    c.insts = 100;
    rec.snapshot(c);
    rec.finish(c); // nothing retired since the boundary: no new sample
    EXPECT_EQ(rec.samples().size(), 1u);
    c.insts = 130;
    rec.finish(c);
    EXPECT_EQ(rec.samples().size(), 2u);
}

TEST(Intervals, ProcessorSnapshotsEveryBoundary)
{
    const std::uint64_t interval = 5000, budget = 52000;
    workload::Program program =
        workload::generateProgram(workload::findProfile("compress"));
    const sim::ProcessorConfig config = sim::promotionPackingConfig(64);
    sim::Processor proc(config, program);

    obs::IntervalRecorder rec(interval);
    proc.attachIntervalRecorder(&rec);
    proc.run(budget);
    const std::uint64_t retired = proc.retiredInsts();

    // retireWidth can overshoot both each boundary and the budget, so
    // the sample count is total/interval plus at most one final
    // partial sample.
    ASSERT_GE(rec.samples().size(), retired / interval);
    ASSERT_LE(rec.samples().size(), retired / interval + 1);

    const std::uint64_t retire_width = config.retireWidth;
    std::uint64_t prev_insts = 0;
    for (std::size_t i = 0; i < rec.samples().size(); ++i) {
        const obs::IntervalCounters &s = rec.samples()[i];
        EXPECT_GT(s.insts, prev_insts);
        if (i + 1 < rec.samples().size()) {
            // A boundary sample lands in [kN, kN + retireWidth).
            const std::uint64_t k = s.insts / interval;
            EXPECT_GE(s.insts, k * interval);
            EXPECT_LT(s.insts, k * interval + retire_width);
        }
        prev_insts = s.insts;
    }
    EXPECT_EQ(rec.samples().back().insts, retired);
    EXPECT_EQ(rec.samples().back().cycles, proc.cycle());
}

TEST(Intervals, JsonDeltasSumToTotals)
{
    obs::IntervalRecorder rec(10);
    obs::IntervalCounters base;
    base.cycles = 7;
    base.insts = 12;
    base.tcLookups = 3;
    rec.setBase(base);
    obs::IntervalCounters a = base;
    a.cycles = 20;
    a.insts = 21;
    a.tcLookups = 9;
    a.tcHits = 4;
    rec.snapshot(a);
    obs::IntervalCounters b = a;
    b.cycles = 33;
    b.insts = 30;
    b.tcLookups = 15;
    b.tcHits = 9;
    rec.snapshot(b);

    const std::string path = tempPath("tcsim_test_intervals.json");
    ASSERT_TRUE(rec.writeJsonFile(path, "bench", "config"));
    const std::string text = slurp(path);
    std::remove(path.c_str());

    EXPECT_NE(text.find("\"schema\":\"tcsim-intervals-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"interval_insts\":10"), std::string::npos);
    // First interval is relative to the base (excludes warm-up)...
    EXPECT_NE(text.find("\"delta\":{\"cycles\":13,\"insts\":9,"),
              std::string::npos);
    // ...and the second relative to the first.
    EXPECT_NE(text.find("\"delta\":{\"cycles\":13,\"insts\":9,"),
              text.rfind("\"delta\":{"));
    EXPECT_NE(text.find("\"tc_lookups\":6,\"tc_hits\":5,"),
              std::string::npos);
}

// ----------------------------------------------------------------------
// Self-profiling.
// ----------------------------------------------------------------------

TEST(Profiler, PhaseAccountingSubtractsNestedFill)
{
    obs::SelfProfiler profiler;
    profiler.beginRun();
    profiler.addPhase(obs::Phase::Retire, 10'000'000); // 10 ms
    profiler.addPhase(obs::Phase::Fill, 4'000'000);    // nested 4 ms
    profiler.addPhase(obs::Phase::Fetch, 2'000'000);
    profiler.endRun(1'000'000);

    EXPECT_DOUBLE_EQ(profiler.phaseSeconds(obs::Phase::Retire), 0.006);
    EXPECT_DOUBLE_EQ(profiler.phaseSeconds(obs::Phase::Fill), 0.004);
    EXPECT_DOUBLE_EQ(profiler.phaseSeconds(obs::Phase::Fetch), 0.002);
    EXPECT_GT(profiler.totalSeconds(), 0.0);
    EXPECT_GT(profiler.simMips(1'000'000), 0.0);

    std::string json;
    profiler.appendJson(json);
    EXPECT_NE(json.find("\"phases\":{\"fetch\":"), std::string::npos);
    EXPECT_NE(json.find("\"total_seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"mips_timeline\":["), std::string::npos);
}

TEST(Profiler, TimelineSamplesAtPeriod)
{
    obs::SelfProfiler profiler(1000);
    profiler.beginRun();
    profiler.maybeSample(500); // below the first period: no sample
    EXPECT_TRUE(profiler.timeline().empty());
    profiler.maybeSample(1000);
    profiler.maybeSample(1001); // same period: no second sample
    ASSERT_EQ(profiler.timeline().size(), 1u);
    EXPECT_EQ(profiler.timeline()[0].insts, 1000u);
    profiler.maybeSample(2500);
    ASSERT_EQ(profiler.timeline().size(), 2u);
    profiler.endRun(3000);
}

// ----------------------------------------------------------------------
// The contract: observability never changes simulation results.
// ----------------------------------------------------------------------

void
expectIdenticalRuns(const std::string &bench,
                    const sim::ProcessorConfig &config)
{
    workload::Program program =
        workload::generateProgram(workload::findProfile(bench));
    const std::uint64_t budget = 60000;

    sim::Processor plain(config, program);
    const sim::SimResult base = plain.run(budget);

    sim::Processor observed(config, program);
    obs::Tracer tracer;
    tracer.enableAll();
    tracer.addSink(std::make_unique<obs::VectorSink>());
    observed.attachTracer(&tracer);
    obs::IntervalRecorder rec(7000);
    observed.attachIntervalRecorder(&rec);
    obs::SelfProfiler profiler;
    observed.attachProfiler(&profiler);
    profiler.beginRun();
    const sim::SimResult traced = observed.run(budget);
    profiler.endRun(observed.retiredInsts());

    EXPECT_GT(tracer.emitted(), 0u);
    EXPECT_FALSE(rec.samples().empty());

    EXPECT_EQ(base.instructions, traced.instructions);
    EXPECT_EQ(base.cycles, traced.cycles);
    const auto &lhs = base.stats.entries();
    const auto &rhs = traced.stats.entries();
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        EXPECT_EQ(lhs[i].first, rhs[i].first);
        EXPECT_EQ(lhs[i].second, rhs[i].second)
            << bench << ": stat " << lhs[i].first << " diverged";
    }
}

TEST(ObservabilityContract, StatsBitIdenticalWithTracingOn)
{
    expectIdenticalRuns("compress", sim::promotionPackingConfig(64));
    expectIdenticalRuns("li", sim::baselineConfig());
}

} // namespace
