/**
 * @file
 * Unit tests for the common utility layer: bit manipulation, random
 * number generation, saturating counters, and statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/bitutils.h"
#include "common/rng.h"
#include "common/saturating_counter.h"
#include "common/stats.h"

namespace tcsim
{
namespace
{

// ----------------------------------------------------------------------
// Bit utilities.
// ----------------------------------------------------------------------

TEST(BitUtils, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffULL);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(mask(100), ~std::uint64_t{0});
}

TEST(BitUtils, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xff, 3, 0), 0xfu);
    EXPECT_EQ(bits(0b1010, 3, 3), 1u);
    EXPECT_EQ(bits(0b1010, 2, 2), 0u);
}

TEST(BitUtils, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(BitUtils, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0x7fff, 16), 0x7fff);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0x1ffffff, 26), static_cast<std::int64_t>(
                                             0x1ffffff));
    EXPECT_EQ(signExtend(0x2000000, 26), -(1LL << 25));
}

TEST(BitUtils, InsertBits)
{
    EXPECT_EQ(insertBits(0, 0, 8, 0xab), 0xabu);
    EXPECT_EQ(insertBits(0xffffffff, 8, 8, 0), 0xffff00ffu);
    EXPECT_EQ(insertBits(0, 21, 5, 0x1f), 0x1fULL << 21);
    // Fields wider than the slot are truncated.
    EXPECT_EQ(insertBits(0, 0, 4, 0xff), 0xfu);
}

// ----------------------------------------------------------------------
// RNG.
// ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GeometricMeanAndMin)
{
    Rng rng(17);
    double sum = 0;
    unsigned lo = 1000;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const unsigned v = rng.geometric(10.0, 2);
        ASSERT_GE(v, 2u);
        sum += v;
        lo = std::min(lo, v);
    }
    EXPECT_EQ(lo, 2u);
    EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, GeometricDegenerateMean)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0, 5), 5u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(23);
    Rng b = a.fork(1);
    Rng c = a.fork(1);
    // Forks of a mutated parent differ from each other.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += b.next() == c.next();
    EXPECT_LT(same, 3);
}

// ----------------------------------------------------------------------
// Saturating counters.
// ----------------------------------------------------------------------

TEST(SaturatingCounter, TwoBitSaturation)
{
    SaturatingCounter c(2, 0);
    EXPECT_FALSE(c.predictTaken());
    c.increment();
    EXPECT_EQ(c.value(), 1u);
    EXPECT_FALSE(c.predictTaken());
    c.increment();
    EXPECT_TRUE(c.predictTaken());
    c.increment();
    c.increment();
    EXPECT_EQ(c.value(), 3u); // saturated
    c.decrement();
    EXPECT_EQ(c.value(), 2u);
}

TEST(SaturatingCounter, DecrementSaturatesAtZero)
{
    SaturatingCounter c(2, 1);
    c.decrement();
    c.decrement();
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SaturatingCounter, UpdateDirection)
{
    SaturatingCounter c(2, 1);
    c.update(true);
    c.update(true);
    EXPECT_TRUE(c.predictTaken());
    c.update(false);
    c.update(false);
    c.update(false);
    EXPECT_FALSE(c.predictTaken());
}

TEST(SaturatingCounter, WidthsAndReset)
{
    for (unsigned bits = 1; bits <= 10; ++bits) {
        SaturatingCounter c(bits, 0);
        EXPECT_EQ(c.maxValue(), (1u << bits) - 1);
        for (unsigned i = 0; i < (2u << bits); ++i)
            c.increment();
        EXPECT_EQ(c.value(), c.maxValue());
        EXPECT_TRUE(c.isSaturated());
        c.reset();
        EXPECT_EQ(c.value(), c.maxValue() / 2);
    }
}

TEST(SaturatingCounter, SetClamps)
{
    SaturatingCounter c(2, 0);
    c.set(100);
    EXPECT_EQ(c.value(), 3u);
}

// ----------------------------------------------------------------------
// Statistics.
// ----------------------------------------------------------------------

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, RunningMean)
{
    RunningMean m;
    EXPECT_EQ(m.mean(), 0.0);
    m.sample(2.0);
    m.sample(4.0);
    m.sample(6.0);
    EXPECT_DOUBLE_EQ(m.mean(), 4.0);
    EXPECT_EQ(m.count(), 3u);
    EXPECT_DOUBLE_EQ(m.sum(), 12.0);
}

TEST(Stats, HistogramBucketsAndSaturation)
{
    Histogram h(5);
    h.sample(0);
    h.sample(2);
    h.sample(2);
    h.sample(9); // saturates into bucket 4
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.5);
    // Mean uses the un-saturated sample values.
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 2 + 2 + 9) / 4.0);
}

TEST(Stats, HistogramReset)
{
    Histogram h(4);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Stats, StatDumpRoundTrip)
{
    StatDump dump;
    dump.add("a.b", 1.5);
    dump.add("c", 2.0);
    EXPECT_TRUE(dump.has("a.b"));
    EXPECT_FALSE(dump.has("nope"));
    EXPECT_DOUBLE_EQ(dump.get("a.b"), 1.5);
    std::ostringstream os;
    dump.print(os);
    EXPECT_NE(os.str().find("a.b"), std::string::npos);
    EXPECT_NE(os.str().find("1.5"), std::string::npos);
}

} // namespace
} // namespace tcsim

namespace tcsim
{
namespace
{

// ----------------------------------------------------------------------
// Assertion contracts (death tests).
// ----------------------------------------------------------------------

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LogDeath, AssertMacroAborts)
{
    EXPECT_DEATH(TCSIM_ASSERT(1 == 2, "impossible"), "impossible");
}

TEST(LogDeath, RngBelowZeroBound)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "bound > 0");
}

} // namespace
} // namespace tcsim
