/**
 * @file
 * Processor-level behaviour tests on hand-written programs: the
 * retired stream always equals the functional oracle (enforced by
 * internal invariants), so these tests focus on timing-visible
 * behaviour: recovery, forwarding, disambiguation modes, promotion
 * faults and serialization.
 */

#include <gtest/gtest.h>

#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"
#include "workload/builder.h"
#include "workload/executor.h"

namespace tcsim::sim
{
namespace
{

using isa::Opcode;
using workload::Label;
using workload::ProgramBuilder;

/** Run @p program to completion under @p config. */
SimResult
run(const workload::Program &program, ProcessorConfig config,
    std::uint64_t max_insts = 0)
{
    Processor proc(config, program);
    return proc.run(max_insts);
}

/** A loop summing 1..n with a data-driven exit. */
workload::Program
loopProgram(int trip)
{
    ProgramBuilder b("loop");
    b.addi(3, 0, trip);
    b.addi(4, 0, 0);
    Label top = b.here();
    b.add(4, 4, 3);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    return b.build();
}

TEST(Core, RunsToCompletionAndCountsInstructions)
{
    workload::Program p = loopProgram(10);
    workload::FunctionalExecutor golden(p);
    while (!golden.halted())
        golden.step();

    const SimResult r = run(p, baselineConfig());
    EXPECT_EQ(r.instructions, golden.instCount());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
}

TEST(Core, MaxInstsStopsEarly)
{
    workload::Program p = loopProgram(1000);
    Processor proc(baselineConfig(), p);
    const SimResult r = proc.run(100);
    EXPECT_GE(r.instructions, 100u);
    EXPECT_LT(r.instructions, 130u); // one retire burst of slack
}

TEST(Core, IcacheAndTraceCacheConfigsAgreeArchitecturally)
{
    workload::Program p = loopProgram(50);
    const SimResult a = run(p, icacheConfig());
    const SimResult b = run(p, baselineConfig());
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(Core, TraceCacheSpeedsUpLoop)
{
    workload::Program p = loopProgram(400);
    const SimResult icache = run(p, icacheConfig());
    const SimResult tc = run(p, baselineConfig());
    // The 3-instruction loop body benefits from multi-block fetch.
    EXPECT_GT(tc.effectiveFetchRate, icache.effectiveFetchRate);
}

TEST(Core, MispredictsDetectedAndResolved)
{
    // A data-dependent branch flipping with the parity of a counter:
    // some mispredictions are inevitable early on.
    ProgramBuilder b("flip");
    b.addi(3, 0, 200);
    Label top = b.here();
    b.andi(5, 3, 1);
    Label skip = b.newLabel();
    b.beq(5, 0, skip);
    b.addi(6, 6, 1);
    b.bind(skip);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    const SimResult r = run(b.build(), baselineConfig());
    EXPECT_GT(r.condBranches, 300u);
    EXPECT_GT(r.meanResolutionTime, 0.0);
}

TEST(Core, StoreLoadForwardingProducesCorrectValues)
{
    // Store then immediately load the same address in a loop; the
    // retired stream is oracle-checked, so completion proves the
    // forwarding path returns correct data.
    ProgramBuilder b("fwd");
    const Addr buf = b.allocData(64);
    b.loadImm64(5, static_cast<std::uint32_t>(buf));
    b.addi(3, 0, 100);
    Label top = b.here();
    b.st(3, 0, 5);
    b.ld(6, 0, 5);
    b.add(7, 7, 6);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    const SimResult r = run(b.build(), baselineConfig());
    EXPECT_GT(r.instructions, 500u);
}

TEST(Core, PerfectDisambiguationNotSlower)
{
    // On a real workload, perfect disambiguation must not lose to the
    // conservative scheduler (it removes only false stalls; a tiny
    // scheduling-jitter allowance covers second-order effects).
    workload::Program p = workload::generateProgram(
        workload::findProfile("compress"));
    ProcessorConfig conservative = baselineConfig();
    ProcessorConfig perfect = baselineConfig();
    perfect.disambiguation = Disambiguation::Perfect;
    Processor c(conservative, p);
    Processor f(perfect, p);
    const SimResult rc = c.run(40000);
    const SimResult rf = f.run(40000);
    // Both stop at the 40k budget (the final retire burst may differ).
    EXPECT_GE(rc.instructions, 40000u);
    EXPECT_GE(rf.instructions, 40000u);
    EXPECT_LE(rf.cycles, rc.cycles * 101 / 100);
}

TEST(Core, TrapSerializesButCompletes)
{
    ProgramBuilder b("trap");
    b.addi(3, 0, 20);
    Label top = b.here();
    b.trap();
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    const SimResult r = run(b.build(), baselineConfig());
    EXPECT_GT(r.cycleCat[static_cast<unsigned>(CycleCategory::Traps)],
              0u);
}

TEST(Core, PromotionFaultRecoversCorrectly)
{
    // A branch taken 200 times then not-taken once, repeatedly: it is
    // promoted (threshold 16) and faults at every flip. Completion
    // under the oracle invariant proves fault recovery works.
    ProgramBuilder b("fault");
    b.addi(9, 0, 8); // outer
    Label outer = b.here();
    b.addi(3, 0, 200);
    Label top = b.here();
    b.addi(4, 4, 1);
    b.addi(3, 3, -1);
    b.bne(3, 0, top); // promoted latch, faults at each exit
    b.addi(9, 9, -1);
    b.bne(9, 0, outer);
    b.halt();
    const SimResult r = run(b.build(), promotionConfig(16));
    EXPECT_GT(r.promotedFaults, 0u);
    EXPECT_GT(r.promotedRetired, 0u);
}

TEST(Core, PromotionLiftsFetchRateOnBiasedCode)
{
    // Three strongly biased branches per iteration cap the baseline
    // at the 3-branch limit; promotion lifts it.
    ProgramBuilder b("biased");
    b.addi(3, 0, 3000);
    Label top = b.here();
    for (int i = 0; i < 6; ++i) {
        Label skip = b.newLabel();
        b.bne(0, 0, skip); // never taken
        b.add(10, 11, 12);
        b.bind(skip);
    }
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    workload::Program p = b.build();
    const SimResult base = run(p, baselineConfig());
    const SimResult promo = run(p, promotionConfig(64));
    EXPECT_GT(promo.effectiveFetchRate,
              base.effectiveFetchRate * 1.05);
    EXPECT_GT(promo.fetchesNeeding01, base.fetchesNeeding01);
}

TEST(Core, PackingLiftsFetchRateOnOddBlocks)
{
    // 11-instruction blocks leave 5 slots unusable under atomic fill.
    ProgramBuilder b("odd");
    b.addi(3, 0, 3000);
    Label top = b.here();
    for (int i = 0; i < 10; ++i)
        b.add(10, 11, 12);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    workload::Program p = b.build();
    const SimResult base = run(p, baselineConfig());
    const SimResult pack = run(p, packingConfig());
    EXPECT_GT(pack.effectiveFetchRate, base.effectiveFetchRate * 1.1);
}

TEST(Core, CycleAccountingSumsToTotal)
{
    workload::Program p = loopProgram(300);
    Processor proc(baselineConfig(), p);
    const SimResult r = proc.run(0);
    std::uint64_t sum = 0;
    for (unsigned c = 0;
         c < static_cast<unsigned>(CycleCategory::NumCategories); ++c)
        sum += r.cycleCat[c];
    EXPECT_EQ(sum, proc.accounting().totalCycles());
    // Fetch stops at done; every cycle before that is categorized.
    EXPECT_GE(r.cycles, sum);
    EXPECT_LE(r.cycles - sum, 2u);
}

TEST(Core, DeterministicAcrossRuns)
{
    workload::Program p = loopProgram(200);
    const SimResult a = run(p, promotionPackingConfig());
    const SimResult b = run(p, promotionPackingConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
}

TEST(Core, IndirectJumpMisfetchRecovered)
{
    // A two-target jump table alternating targets: last-target
    // prediction misses half the time; misfetch recovery must keep
    // the stream architecturally exact.
    ProgramBuilder b("ind");
    const Addr table = b.allocData(16);
    Label even = b.newLabel(), odd = b.newLabel(), join = b.newLabel();
    b.setDataLabel(table, even);
    b.setDataLabel(table + 8, odd);
    b.loadImm64(5, static_cast<std::uint32_t>(table));
    b.addi(3, 0, 200);
    Label top = b.here();
    b.andi(6, 3, 1);
    b.slli(6, 6, 3);
    b.add(6, 5, 6);
    b.ld(6, 0, 6);
    b.jr(6);
    b.bind(even);
    b.addi(7, 7, 1);
    b.j(join);
    b.bind(odd);
    b.addi(8, 8, 1);
    b.j(join);
    b.bind(join);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    const SimResult r = run(b.build(), baselineConfig());
    EXPECT_GT(r.indirectMispredicts, 50u);
    EXPECT_GT(r.cycleCat[static_cast<unsigned>(
                  CycleCategory::Misfetches)],
              0u);
}

TEST(Core, FetchHistogramPopulated)
{
    workload::Program p = loopProgram(500);
    Processor proc(baselineConfig(), p);
    const SimResult r = proc.run(0);
    std::uint64_t total = 0;
    for (unsigned reason = 0;
         reason < static_cast<unsigned>(FetchReason::NumReasons);
         ++reason) {
        for (unsigned w = 0; w <= Accounting::kMaxFetchWidth; ++w)
            total += r.fetchHist[reason][w];
    }
    EXPECT_EQ(total, proc.accounting().usefulFetches());
    EXPECT_GT(total, 0u);
}

TEST(Core, EffectiveFetchRateBounded)
{
    workload::Program p = loopProgram(500);
    const SimResult r = run(p, promotionPackingConfig());
    EXPECT_GT(r.effectiveFetchRate, 1.0);
    EXPECT_LE(r.effectiveFetchRate, 16.0);
}

} // namespace
} // namespace tcsim::sim

namespace tcsim::sim
{
namespace
{

TEST(MemDepSpeculation, CorrectAndBetween)
{
    // Speculative disambiguation must keep the architectural stream
    // exact (oracle-enforced) and land between conservative and
    // perfect in cycles (with jitter slack).
    workload::Program p = workload::generateProgram(
        workload::findProfile("compress"));
    ProcessorConfig conservative = baselineConfig();
    ProcessorConfig speculative = baselineConfig();
    speculative.disambiguation = Disambiguation::Speculative;
    ProcessorConfig perfect = baselineConfig();
    perfect.disambiguation = Disambiguation::Perfect;

    Processor c(conservative, p);
    Processor s(speculative, p);
    Processor f(perfect, p);
    const SimResult rc = c.run(60000);
    const SimResult rs = s.run(60000);
    const SimResult rf = f.run(60000);
    EXPECT_GE(rs.instructions, 60000u);
    EXPECT_LE(rs.cycles, rc.cycles * 102 / 100);
    EXPECT_GE(rs.cycles, rf.cycles * 98 / 100);
}

TEST(MemDepSpeculation, ViolationsDetectedAndReplayed)
{
    // A loop whose store address resolves late and aliases the load:
    // speculation must mispeculate at least once, learn, and still
    // retire the exact architectural stream.
    workload::ProgramBuilder b("alias");
    const Addr buf = b.allocData(64);
    b.loadImm64(5, static_cast<std::uint32_t>(buf));
    b.addi(9, 0, 1);
    b.addi(3, 0, 300);
    workload::Label top = b.here();
    b.mul(4, 9, 9);
    b.mul(4, 4, 9);
    b.andi(4, 4, 0);   // slow zero
    b.add(4, 5, 4);    // store address = buf, known late
    b.st(3, 0, 4);
    b.ld(6, 0, 5);     // aliases the store (same address)
    b.add(7, 7, 6);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    workload::Program p = b.build();

    ProcessorConfig config = baselineConfig();
    config.disambiguation = Disambiguation::Speculative;
    Processor proc(config, p);
    const SimResult r = proc.run(0);
    EXPECT_GT(r.stats.get("mem.order_violations"), 0.0);
    // The dependence predictor converges: far fewer violations than
    // loop iterations.
    EXPECT_LT(r.stats.get("mem.order_violations"), 50.0);
}

} // namespace
} // namespace tcsim::sim

namespace tcsim::sim
{
namespace
{

TEST(Core, ResetStatsMeasuresSteadyStateWindow)
{
    workload::Program p = workload::generateProgram(
        workload::findProfile("compress"));
    Processor proc(baselineConfig(), p);
    proc.run(50000);
    proc.resetStats();
    const SimResult warm = proc.run(100000);
    // The window excludes the warm-up.
    EXPECT_GE(warm.instructions, 50000u);
    EXPECT_LT(warm.instructions, 51000u);
    EXPECT_GT(warm.ipc, 0.2);

    // The measurement window is internally consistent: categorized
    // cycles equal the window's cycle count (within the final cycle).
    std::uint64_t category_sum = 0;
    for (unsigned c = 0;
         c < static_cast<unsigned>(CycleCategory::NumCategories); ++c)
        category_sum += warm.cycleCat[c];
    EXPECT_LE(warm.cycles - category_sum, 2u);
    EXPECT_GT(warm.tcLookups, 0u);
}

} // namespace
} // namespace tcsim::sim

namespace tcsim::sim
{
namespace
{

TEST(CoreKnobs, SmallCheckpointPoolThrottlesFetch)
{
    workload::Program p = workload::generateProgram(
        workload::findProfile("gcc"));
    ProcessorConfig small = baselineConfig();
    small.checkpoints = 8;
    ProcessorConfig large = baselineConfig();
    large.checkpoints = 96;

    Processor ps(small, p);
    Processor pl(large, p);
    const SimResult rs = ps.run(60000);
    const SimResult rl = pl.run(60000);
    const auto full = [](const SimResult &r) {
        return r.cycleCat[static_cast<unsigned>(
            CycleCategory::FullWindow)];
    };
    // Fewer checkpoints -> more full-window stalls and no more IPC.
    EXPECT_GT(full(rs), full(rl));
    EXPECT_LE(rs.ipc, rl.ipc * 1.02);
}

TEST(CoreKnobs, RetireWidthLimitsThroughput)
{
    workload::Program p = workload::generateProgram(
        workload::findProfile("compress"));
    ProcessorConfig narrow = baselineConfig();
    narrow.retireWidth = 2;
    Processor pn(narrow, p);
    Processor pw(baselineConfig(), p);
    const SimResult rn = pn.run(60000);
    const SimResult rw = pw.run(60000);
    EXPECT_LT(rn.ipc, rw.ipc);
    EXPECT_LE(rn.ipc, 2.0 + 1e-9);
}

TEST(CoreKnobs, TinyTraceCacheStillCorrect)
{
    workload::Program p = workload::generateProgram(
        workload::findProfile("compress"));
    ProcessorConfig config = promotionPackingConfig(64);
    config.traceCache.numSegments = 16;
    config.traceCache.assoc = 2;
    Processor proc(config, p);
    const SimResult r = proc.run(60000);
    EXPECT_GE(r.instructions, 60000u);
    // A 16-segment cache still hits inside loops.
    EXPECT_GT(r.tcHits, 0u);
}

} // namespace
} // namespace tcsim::sim
