/**
 * @file
 * Direct tests for the node-table (reservation station) bookkeeping.
 */

#include <gtest/gtest.h>

#include "core/node_tables.h"

namespace tcsim::core
{
namespace
{

TEST(NodeTables, AllocateRoundRobinsAcrossUnits)
{
    NodeTables tables(NodeTableParams{4, 2});
    std::uint8_t units[4];
    for (auto &unit : units)
        ASSERT_TRUE(tables.allocate(unit));
    // Four allocations spread over four units.
    EXPECT_NE(units[0], units[1]);
    EXPECT_NE(units[1], units[2]);
    EXPECT_EQ(tables.totalOccupied(), 4u);
}

TEST(NodeTables, AllocationFailsWhenFull)
{
    NodeTables tables(NodeTableParams{2, 2});
    std::uint8_t unit = 0;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(tables.allocate(unit));
    EXPECT_FALSE(tables.allocate(unit));
    tables.release(0);
    EXPECT_TRUE(tables.allocate(unit));
    EXPECT_EQ(unit, 0);
}

TEST(NodeTables, SkipsFullUnits)
{
    NodeTables tables(NodeTableParams{2, 1});
    std::uint8_t a = 0, b = 0;
    ASSERT_TRUE(tables.allocate(a));
    ASSERT_TRUE(tables.allocate(b));
    EXPECT_NE(a, b);
    tables.release(a);
    std::uint8_t c = 0;
    ASSERT_TRUE(tables.allocate(c));
    EXPECT_EQ(c, a);
}

TEST(NodeTables, ReadyQueuesAreFifoPerUnit)
{
    NodeTables tables(NodeTableParams{2, 4});
    tables.markReady(0, 11);
    tables.markReady(0, 12);
    tables.markReady(1, 21);
    EXPECT_EQ(tables.readyQueue(0).front(), 11u);
    tables.readyQueue(0).pop_front();
    EXPECT_EQ(tables.readyQueue(0).front(), 12u);
    EXPECT_EQ(tables.readyQueue(1).front(), 21u);
}

TEST(NodeTables, ClearResetsEverything)
{
    NodeTables tables(NodeTableParams{2, 2});
    std::uint8_t unit = 0;
    tables.allocate(unit);
    tables.markReady(unit, 5);
    tables.clear();
    EXPECT_EQ(tables.totalOccupied(), 0u);
    EXPECT_TRUE(tables.readyQueue(unit).empty());
}

TEST(NodeTablesDeath, OverReleaseAborts)
{
    NodeTables tables(NodeTableParams{2, 2});
    EXPECT_DEATH(tables.release(0), "");
}

} // namespace
} // namespace tcsim::core
