/**
 * @file
 * Recovery-path equivalence tests for the window-indexed lookups.
 *
 * The indexed event paths (checkpoint stack, hashed memAddr indexes,
 * binary-searched robOrder_ positioning) must be *bit-identical* to
 * the original O(window) scans. Two layers of proof:
 *
 *  1. A golden-stats fixture: cycle/branch/mispredict/fault/violation
 *     counts captured from the pre-indexing simulator (commit
 *     77a5ca7) across benchmarks, configs, and two ROB sizes. The
 *     current simulator must reproduce every number exactly.
 *
 *  2. Verify mode: TCSIM_VERIFY_WINDOW_INDEX=1 makes the processor
 *     run the original reference scans beside every indexed lookup
 *     and TCSIM_ASSERT agreement per event; a run under verify mode
 *     must also produce the same aggregate results as a plain run.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "sim/config.h"
#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;

sim::ProcessorConfig
configByName(const std::string &name, std::uint32_t rob_entries)
{
    sim::ProcessorConfig config;
    if (name == "baseline") {
        config = sim::baselineConfig();
    } else if (name == "promo-pack") {
        config = sim::promotionPackingConfig(64);
    } else {
        EXPECT_EQ(name, "speculative");
        config = sim::promotionPackingConfig(64);
        config.disambiguation = sim::Disambiguation::Speculative;
    }
    config.robEntries = rob_entries;
    return config;
}

sim::SimResult
runCombo(const char *bench, const char *config_name,
         std::uint32_t rob_entries, std::uint64_t insts)
{
    const workload::Program program =
        workload::generateProgram(workload::findProfile(bench));
    sim::Processor proc(configByName(config_name, rob_entries), program);
    return proc.run(insts);
}

/** Golden statistics captured from the pre-indexing simulator. */
struct GoldenRow
{
    const char *bench;
    const char *config;
    std::uint32_t rob;
    std::uint64_t insts;
    std::uint64_t cycles;
    std::uint64_t condBranches;
    std::uint64_t condMispredicts;
    std::uint64_t promotedFaults;
    std::uint64_t memOrderViolations;
};

constexpr GoldenRow kGolden[] = {
    {"compress", "promo-pack", 64, 60000ull, 20749ull, 9188ull, 1005ull, 2ull, 0ull},
    {"compress", "promo-pack", 512, 60000ull, 15745ull, 9188ull, 1101ull, 2ull, 0ull},
    {"vortex", "speculative", 64, 60000ull, 26543ull, 8279ull, 616ull, 7ull, 0ull},
    {"vortex", "speculative", 512, 60000ull, 20791ull, 8279ull, 707ull, 7ull, 0ull},
    {"m88ksim", "baseline", 64, 60000ull, 17766ull, 10886ull, 365ull, 0ull, 0ull},
    {"m88ksim", "baseline", 512, 60000ull, 14316ull, 10887ull, 450ull, 0ull, 0ull},
    {"tex", "speculative", 512, 60000ull, 16434ull, 6527ull, 820ull, 5ull, 1ull},
    {"gnuchess", "promo-pack", 512, 60000ull, 15891ull, 16628ull, 1271ull, 44ull, 0ull},
};

TEST(WindowEquivalence, GoldenStatsBitIdentical)
{
    for (const GoldenRow &row : kGolden) {
        SCOPED_TRACE(std::string(row.bench) + "/" + row.config +
                     "/rob=" + std::to_string(row.rob));
        const sim::SimResult r =
            runCombo(row.bench, row.config, row.rob, row.insts);
        // Retire drains up to retireWidth per cycle, so the final
        // cycle can overshoot the budget by a few instructions.
        EXPECT_GE(r.instructions, row.insts);
        EXPECT_LT(r.instructions, row.insts + 16);
        EXPECT_EQ(r.cycles, row.cycles);
        EXPECT_EQ(r.condBranches, row.condBranches);
        EXPECT_EQ(r.condMispredicts, row.condMispredicts);
        EXPECT_EQ(r.promotedFaults, row.promotedFaults);
        EXPECT_EQ(static_cast<std::uint64_t>(
                      r.stats.get("mem.order_violations")),
                  row.memOrderViolations);
    }
}

/** RAII guard for the verify-mode environment variable. */
class VerifyModeGuard
{
  public:
    VerifyModeGuard() { setenv("TCSIM_VERIFY_WINDOW_INDEX", "1", 1); }
    ~VerifyModeGuard() { unsetenv("TCSIM_VERIFY_WINDOW_INDEX"); }
};

TEST(WindowEquivalence, VerifyModeCrossChecksEveryEvent)
{
    // Under verify mode the processor asserts, per event, that the
    // indexed lookup equals the reference scan; reaching the end of a
    // run means every store-violation check, load disambiguation,
    // forwarding decision, and checkpoint selection agreed. The
    // aggregate statistics must also match a plain run exactly.
    struct Combo
    {
        const char *bench;
        const char *config;
        std::uint32_t rob;
    };
    constexpr Combo kCombos[] = {
        {"compress", "speculative", 64},
        {"compress", "speculative", 512},
        {"gnuchess", "promo-pack", 512},
        {"vortex", "baseline", 256},
    };
    constexpr std::uint64_t kInsts = 40000;
    for (const Combo &combo : kCombos) {
        SCOPED_TRACE(std::string(combo.bench) + "/" + combo.config +
                     "/rob=" + std::to_string(combo.rob));
        const sim::SimResult plain =
            runCombo(combo.bench, combo.config, combo.rob, kInsts);
        sim::SimResult verified;
        {
            VerifyModeGuard guard;
            verified =
                runCombo(combo.bench, combo.config, combo.rob, kInsts);
        }
        EXPECT_EQ(verified.cycles, plain.cycles);
        EXPECT_DOUBLE_EQ(verified.ipc, plain.ipc);
        EXPECT_EQ(verified.condBranches, plain.condBranches);
        EXPECT_EQ(verified.condMispredicts, plain.condMispredicts);
        EXPECT_DOUBLE_EQ(verified.condMispredictRate,
                         plain.condMispredictRate);
        EXPECT_EQ(verified.promotedFaults, plain.promotedFaults);
        EXPECT_EQ(verified.stats.get("mem.order_violations"),
                  plain.stats.get("mem.order_violations"));
    }
}

TEST(WindowEquivalence, RecoveryCountsMatchAcrossRobSizes)
{
    // The recovery-path statistics (mispredict and fault counts, which
    // count applied recoveries) must be internally consistent between
    // a small and a large window under verify mode: the indexed
    // checkpoint selection is exercised at both extremes.
    VerifyModeGuard guard;
    for (const std::uint32_t rob : {64u, 512u}) {
        SCOPED_TRACE("rob=" + std::to_string(rob));
        const sim::SimResult r =
            runCombo("gnuchess", "promo-pack", rob, 30000);
        EXPECT_GE(r.instructions, 30000u);
        EXPECT_GT(r.condBranches, 0u);
        // gnuchess under promotion reliably faults; both window sizes
        // must exercise the promoted-fault recovery path.
        EXPECT_GT(r.promotedFaults, 0u);
    }
}

} // namespace
