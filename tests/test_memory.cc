/**
 * @file
 * Tests for the cache model and the assembled hierarchy: hits, misses,
 * LRU replacement, write-back accounting, and latency composition.
 */

#include <gtest/gtest.h>

#include "memory/cache.h"
#include "memory/dram.h"
#include "memory/hierarchy.h"
#include "obs/trace.h"

namespace tcsim::memory
{
namespace
{

CacheParams
smallCache()
{
    // 2 sets x 2 ways x 64B lines = 256 B.
    return CacheParams{"test", 256, 2, 64, 0};
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache(smallCache(), nullptr, 50);
    EXPECT_EQ(cache.access(0x1000, false), 50u);
    EXPECT_EQ(cache.access(0x1000, false), 0u);
    EXPECT_EQ(cache.access(0x1030, false), 0u); // same line
    EXPECT_EQ(cache.accesses(), 3u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SetConflictEvictsLru)
{
    Cache cache(smallCache(), nullptr, 50);
    // Three lines mapping to set 0 (line addr even): 0x000, 0x100, 0x200.
    cache.access(0x000, false);
    cache.access(0x100, false);
    cache.access(0x000, false); // touch: 0x100 becomes LRU
    cache.access(0x200, false); // evicts 0x100
    EXPECT_EQ(cache.access(0x000, false), 0u);
    EXPECT_NE(cache.access(0x100, false), 0u); // was evicted
}

TEST(Cache, ProbeDoesNotFill)
{
    Cache cache(smallCache(), nullptr, 50);
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_EQ(cache.misses(), 0u);
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.probe(0x1000));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x000, true); // dirty
    cache.access(0x100, false);
    cache.access(0x200, false); // evicts dirty 0x000
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x000, false);
    cache.access(0x100, false);
    cache.access(0x200, false);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x1000, false);
    cache.flush();
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_NE(cache.access(0x1000, false), 0u);
}

TEST(Cache, FlushCountsDirtyWritebacks)
{
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x000, true);  // dirty
    cache.access(0x040, true);  // dirty, other set
    cache.access(0x100, false); // clean
    EXPECT_EQ(cache.writebacks(), 0u);
    cache.flush();
    EXPECT_EQ(cache.writebacks(), 2u); // one per dirty valid line
    cache.flush();
    EXPECT_EQ(cache.writebacks(), 2u); // idempotent once empty
}

TEST(Cache, FlushEmitsWritebackTracePoints)
{
    Cache cache(smallCache(), nullptr, 50);
    obs::Tracer tracer;
    auto sink = std::make_unique<obs::VectorSink>();
    obs::VectorSink *raw = sink.get();
    tracer.setMask(1u << static_cast<unsigned>(obs::Category::Mem));
    tracer.addSink(std::move(sink));
    cache.setTracer(&tracer);

    cache.access(0x000, true);
    cache.flush();
    unsigned flush_events = 0;
    for (const auto &rec : raw->records())
        if (rec.event == "flush_writeback")
            ++flush_events;
    EXPECT_EQ(flush_events, 1u);
}

TEST(Cache, LegacyDirtyEvictionCostsNothingBelow)
{
    CacheParams l2_params{"l2", 1024, 2, 64, 6};
    Cache l2(l2_params, nullptr, 50);
    Cache l1(smallCache(), &l2, 50); // writebackToNext defaults false

    l1.access(0x000, true); // dirty; also fills l2
    l1.access(0x100, false);
    const std::uint64_t l2_accesses_before = l2.accesses();
    l1.access(0x200, false); // evicts dirty 0x000
    EXPECT_EQ(l1.writebacks(), 1u);
    // Legacy golden-stat path: the victim never reaches the next level.
    EXPECT_EQ(l2.accesses(), l2_accesses_before + 1); // demand miss only
    EXPECT_EQ(l1.writebackCycles(), 0u);
}

TEST(Cache, DirtyEvictionWritesBackToNextLevel)
{
    CacheParams l2_params{"l2", 1024, 2, 64, 6};
    Cache l2(l2_params, nullptr, 50);
    CacheParams l1_params = smallCache();
    l1_params.writebackToNext = true;
    Cache l1(l1_params, &l2, 50);

    l1.access(0x000, true); // dirty; fills l2 via the demand miss
    l1.access(0x100, false);
    const std::uint64_t l2_accesses_before = l2.accesses();
    l1.access(0x200, false); // evicts dirty 0x000
    EXPECT_EQ(l1.writebacks(), 1u);
    // Demand miss for 0x200 plus the victim writeback.
    EXPECT_EQ(l2.accesses(), l2_accesses_before + 2);
    // 0x000 is still resident in L2, so the writeback hits: 6 cycles.
    EXPECT_EQ(l1.writebackCycles(), 6u);
    // The written-back line is now dirty in L2: evicting it from L2
    // must count an L2 writeback.
    l2.flush();
    EXPECT_EQ(l2.writebacks(), 1u);
}

TEST(Cache, LastLevelWritebackGoesToDram)
{
    DramParams dram_params;
    dram_params.contended = true;
    dram_params.busBytesPerCycle = 0; // infinite bus
    dram_params.banks = 0;            // unbanked: flat 50-cycle core
    dram_params.maxOutstanding = 0;
    Dram dram(dram_params);

    CacheParams params = smallCache();
    params.writebackToNext = true;
    Cache cache(params, nullptr, 50);
    cache.setBackingDram(&dram);

    cache.access(0x000, true, 0);
    cache.access(0x100, false, 100);
    cache.access(0x200, false, 200); // evicts dirty 0x000
    EXPECT_EQ(dram.reads(), 3u);
    EXPECT_EQ(dram.writes(), 1u); // the victim writeback
    EXPECT_EQ(cache.writebackCycles(), 50u);
}

TEST(Cache, MissRatio)
{
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x0, false);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.25);
}

TEST(Cache, LatencyComposesThroughLevels)
{
    CacheParams l2_params{"l2", 1024, 2, 64, 6};
    Cache l2(l2_params, nullptr, 50);
    CacheParams l1_params{"l1", 256, 2, 64, 0};
    Cache l1(l1_params, &l2, 50);

    // Cold: L1 miss + L2 miss -> 6 + 50.
    EXPECT_EQ(l1.access(0x4000, false), 56u);
    // L1 hit.
    EXPECT_EQ(l1.access(0x4000, false), 0u);
    // Evict from L1 but still in L2: L1 miss + L2 hit -> 6.
    l1.access(0x4100, false);
    l1.access(0x4200, false);
    EXPECT_EQ(l1.access(0x4000, false), 6u);
}

TEST(Cache, StatsDump)
{
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x0, false);
    StatDump dump;
    cache.dumpStats(dump);
    EXPECT_DOUBLE_EQ(dump.get("test.accesses"), 1.0);
    EXPECT_DOUBLE_EQ(dump.get("test.misses"), 1.0);
}

TEST(Cache, StatsDumpIsIntegersOnly)
{
    // Canonical-document policy: derived ratios are recomputed by the
    // display renderer, never stored in the dump.
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x0, false);
    cache.access(0x0, false);
    StatDump dump;
    cache.dumpStats(dump);
    EXPECT_FALSE(dump.has("test.miss_ratio"));
    for (const auto &[name, value] : dump.entries())
        EXPECT_EQ(value, static_cast<double>(
                             static_cast<std::uint64_t>(value)))
            << name << " is not an integer";
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache cache(smallCache(), nullptr, 50);
    cache.access(0x0, false);
    cache.resetStats();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_EQ(cache.access(0x0, false), 0u); // still resident
}

TEST(Hierarchy, PaperGeometry)
{
    Hierarchy h;
    EXPECT_EQ(h.icache().lineBytes(), 64u);
    // 4 KB, 4-way, 64 B lines -> 16 sets.
    EXPECT_EQ(h.icache().numSets(), 16u);
    // 64 KB, 4-way -> 256 sets.
    EXPECT_EQ(h.dcache().numSets(), 256u);
}

TEST(Hierarchy, SharedL2BetweenIAndD)
{
    Hierarchy h;
    // Fill a line via the icache path, then the dcache finds it in L2.
    EXPECT_EQ(h.icache().access(0x8000, false), 56u);
    EXPECT_EQ(h.dcache().access(0x8000, false), 6u);
}

TEST(Hierarchy, StatsCoverAllLevels)
{
    Hierarchy h;
    h.icache().access(0x0, false);
    h.dcache().access(0x40, true);
    StatDump dump;
    h.dumpStats(dump);
    EXPECT_TRUE(dump.has("l1i.misses"));
    EXPECT_TRUE(dump.has("l1d.misses"));
    EXPECT_TRUE(dump.has("l2.misses"));
    // Flat-latency default: no DRAM device stats in the dump.
    EXPECT_FALSE(dump.has("dram.reads"));
}

TEST(Hierarchy, ContendedDramBacksL2)
{
    HierarchyParams params;
    params.dram.contended = true;
    params.dram.busBytesPerCycle = 4; // 64B line -> 16 bus cycles
    Hierarchy h(params);

    // Two back-to-back L2 misses at the same cycle serialize on the
    // bus: the second is strictly slower than the first.
    const std::uint32_t first = h.dcache().access(0x10000, false, 0);
    const std::uint32_t second = h.dcache().access(0x20000, false, 0);
    EXPECT_GT(second, first);
    EXPECT_EQ(h.dram().reads(), 2u);
    EXPECT_GT(h.dram().busWaitCycles(), 0u);

    StatDump dump;
    h.dumpStats(dump);
    EXPECT_TRUE(dump.has("dram.reads"));
    EXPECT_TRUE(dump.has("dram.bus_wait_cycles"));
}

} // namespace
} // namespace tcsim::memory

namespace tcsim::memory
{
namespace
{

/**
 * Model-based property test: the cache's hit/miss behaviour must
 * match a straightforward reference model of set-associative LRU.
 */
TEST(CacheProperty, MatchesReferenceLruModel)
{
    const CacheParams params{"mbt", 1024, 4, 64, 0}; // 4 sets x 4 ways
    Cache cache(params, nullptr, 50);

    struct RefSet
    {
        std::vector<Addr> lines; // MRU at back
    };
    std::vector<RefSet> ref(cache.numSets());

    std::uint64_t state = 12345;
    auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state;
    };

    for (int i = 0; i < 20000; ++i) {
        // Small address space so sets conflict heavily.
        const Addr addr = (next() >> 20) % 16384;
        const Addr line = addr / 64;
        RefSet &set = ref[line % cache.numSets()];

        bool ref_hit = false;
        for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
            if (*it == line) {
                set.lines.erase(it);
                set.lines.push_back(line);
                ref_hit = true;
                break;
            }
        }
        if (!ref_hit) {
            if (set.lines.size() == 4)
                set.lines.erase(set.lines.begin());
            set.lines.push_back(line);
        }

        const bool cache_hit = cache.access(addr, false) == 0;
        ASSERT_EQ(cache_hit, ref_hit) << "iteration " << i;
    }
    EXPECT_GT(cache.misses(), 100u);
    EXPECT_GT(cache.accesses() - cache.misses(), 100u);
}

} // namespace
} // namespace tcsim::memory

namespace tcsim::memory
{
namespace
{

TEST(CacheDeath, BadGeometryAborts)
{
    CacheParams params{"bad", 100, 3, 48, 0};
    EXPECT_DEATH(Cache(params, nullptr, 50), "");
}

} // namespace
} // namespace tcsim::memory
