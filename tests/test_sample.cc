/**
 * @file
 * Tests for the sampled-simulation pipeline: BBV profiling and plan
 * JSON round trips, the determinism contract (bit-identical plans
 * regardless of TCSIM_JOBS), banded k selection, BBV artifact
 * store/corrupt/reject/rebuild through the artifact cache, and the
 * warm-state checkpoint round trip.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/artifact_cache.h"
#include "bench/sweep.h"
#include "sample/simpoints.h"
#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace
{

using namespace tcsim;

const workload::Program &
compressProgram()
{
    static const workload::Program program =
        workload::generateProgram(workload::findProfile("compress"));
    return program;
}

obs::BbvDocument
compressProfile()
{
    return sample::profileBbv(compressProgram(), "compress", 40000,
                              10000);
}

TEST(SampleBbv, ProfileShapeAndJsonRoundTrip)
{
    const obs::BbvDocument doc = compressProfile();
    ASSERT_EQ(doc.intervals.size(), 4u);
    for (std::size_t i = 0; i < doc.intervals.size(); ++i) {
        EXPECT_EQ(doc.intervals[i].endInsts, (i + 1) * 10000);
        std::uint64_t sum = 0;
        for (const auto &[block, count] : doc.intervals[i].blocks)
            sum += count;
        EXPECT_EQ(sum, 10000u);
    }
    const std::string json = doc.toJson();
    const auto parsed = obs::BbvDocument::fromJson(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->toJson(), json);
}

TEST(SamplePlan, JsonRoundTripAndExactWeights)
{
    const obs::BbvDocument doc = compressProfile();
    const sample::SimpointPlan plan =
        sample::selectSimpoints(doc, "fp", 3);
    ASSERT_FALSE(plan.points.empty());
    ASSERT_LE(plan.points.size(), 3u);
    std::uint64_t weight_sum = 0;
    for (const sample::Simpoint &pt : plan.points) {
        EXPECT_EQ(pt.startInsts, pt.index * 10000ull);
        EXPECT_EQ(pt.weightDen, doc.intervals.size());
        weight_sum += pt.weightNum;
    }
    EXPECT_EQ(weight_sum, doc.intervals.size()); // exact rationals

    const std::string json = plan.toJson();
    const auto parsed = sample::SimpointPlan::fromJson(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->toJson(), json);
}

TEST(SamplePlan, DeterministicRegardlessOfJobs)
{
    // The pipeline is a single-threaded pure function of
    // (profile, seed): TCSIM_JOBS must not leak into the plan.
    const char *saved = std::getenv("TCSIM_JOBS");
    const std::string saved_value = saved ? saved : "";

    setenv("TCSIM_JOBS", "1", 1);
    const std::string plan_one =
        sample::selectSimpoints(compressProfile(), "fp", 3).toJson();
    setenv("TCSIM_JOBS", "7", 1);
    const std::string plan_seven =
        sample::selectSimpoints(compressProfile(), "fp", 3).toJson();

    if (saved != nullptr)
        setenv("TCSIM_JOBS", saved_value.c_str(), 1);
    else
        unsetenv("TCSIM_JOBS");

    EXPECT_EQ(plan_one, plan_seven);
    // And plain repeatability, same environment.
    EXPECT_EQ(plan_seven,
              sample::selectSimpoints(compressProfile(), "fp", 3)
                  .toJson());
}

TEST(SamplePlan, BandedSelectionFindsTwoPhases)
{
    // Two alternating, internally identical phases: the banded rule
    // must settle on k=2 even with a much larger cap, because k=2's
    // score is (near) minimal and smaller k wins inside the band.
    obs::BbvDocument doc;
    doc.benchmark = "synthetic";
    doc.intervalInsts = 1000;
    doc.totalInsts = 12000;
    for (unsigned i = 0; i < 12; ++i) {
        obs::BbvInterval interval;
        interval.endInsts = (i + 1) * 1000ull;
        if (i % 2 == 0)
            interval.blocks = {{1, 600}, {2, 400}};
        else
            interval.blocks = {{50, 300}, {51, 700}};
        doc.intervals.push_back(interval);
    }
    const sample::SimpointPlan plan =
        sample::selectSimpoints(doc, "fp", 6);
    EXPECT_EQ(plan.k, 2u);
    ASSERT_EQ(plan.points.size(), 2u);
    EXPECT_EQ(plan.points[0].weightNum, 6u);
    EXPECT_EQ(plan.points[1].weightNum, 6u);
}

TEST(SampleBbv, ArtifactStoreCorruptRejectRebuild)
{
    const std::string dir =
        testing::TempDir() + "/tcsim_bbv_artifact_test";
    std::filesystem::remove_all(dir);
    bench::ArtifactCache cache(dir);
    const std::string key = bench::bbvArtifactKey("compress", 40000,
                                                  10000);
    const std::string json = compressProfile().toJson();

    ASSERT_TRUE(cache.store("bbv", key, json));
    auto hit = cache.load("bbv", key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, json);

    // Flip payload bytes on disk: the checksum must reject (and
    // delete) the file instead of handing back a mangled profile.
    const std::string path = cache.pathFor("bbv", key);
    {
        std::fstream file(path, std::ios::in | std::ios::out |
                                    std::ios::binary);
        ASSERT_TRUE(file.good());
        file.seekp(-8, std::ios::end);
        file.write("XXXXXXXX", 8);
    }
    EXPECT_FALSE(cache.load("bbv", key).has_value());
    EXPECT_FALSE(std::filesystem::exists(path));

    // getOrCreate rebuilds from the producer and re-stores.
    int produced = 0;
    const std::string rebuilt = cache.getOrCreate("bbv", key, [&] {
        ++produced;
        return json;
    });
    EXPECT_EQ(produced, 1);
    EXPECT_EQ(rebuilt, json);
    auto rehit = cache.load("bbv", key);
    ASSERT_TRUE(rehit.has_value());
    EXPECT_EQ(*rehit, json);
    std::filesystem::remove_all(dir);
}

TEST(SampleWarmState, ExportImportRoundTrip)
{
    // A warm state exported after functional warming must import into
    // a fresh processor and re-export byte-identically: everything
    // exportWarmState captures survives the round trip.
    sim::Processor warmer(sim::promotionPackingConfig(),
                          compressProgram());
    warmer.functionalWarmup(30000);
    std::ostringstream first;
    warmer.exportWarmState(first);

    sim::Processor fresh(sim::promotionPackingConfig(),
                         compressProgram());
    std::istringstream in(first.str());
    ASSERT_TRUE(fresh.importWarmState(in));
    std::ostringstream second;
    fresh.exportWarmState(second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(SampleWarmState, ImportRejectsMismatchedConfig)
{
    // The icache config has no trace cache: a warm state exported
    // from a trace-cache machine must be refused, not half-applied.
    sim::Processor warmer(sim::promotionPackingConfig(),
                          compressProgram());
    warmer.functionalWarmup(5000);
    std::ostringstream blob;
    warmer.exportWarmState(blob);

    sim::Processor other(sim::icacheConfig(), compressProgram());
    std::istringstream in(blob.str());
    EXPECT_FALSE(other.importWarmState(in));
}

TEST(SampleWarmState, ImportRejectsTruncatedBlob)
{
    sim::Processor warmer(sim::promotionPackingConfig(),
                          compressProgram());
    warmer.functionalWarmup(5000);
    std::ostringstream blob;
    warmer.exportWarmState(blob);
    const std::string bytes = blob.str();

    sim::Processor fresh(sim::promotionPackingConfig(),
                         compressProgram());
    std::istringstream in(bytes.substr(0, bytes.size() / 2));
    EXPECT_FALSE(fresh.importWarmState(in));
}

} // namespace
