/**
 * @file
 * Tests for the sweep scheduler state machine, driven with synthetic
 * time: work-stealing dispatch order, lease expiry after a worker
 * dies, straggler re-dispatch and first-fragment-wins dedup, resume
 * from pre-existing fragments, and byte-identity of the streaming
 * merge against the shared single-process renderer.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/sched.h"
#include "bench/sweep.h"
#include "common/json.h"
#include "sim/config.h"

namespace
{

using namespace tcsim;
using namespace tcsim::bench;

/** A small real matrix (2 benchmarks x 2 configs at tiny budgets). */
std::vector<WorkUnit>
testUnits()
{
    SweepOptions options;
    options.benchmarks = {"compress", "li"};
    options.insts = 20000;
    options.configs = {sim::baselineConfig(), sim::promotionConfig(64)};
    return enumerateUnits(options);
}

/** Deterministic fake per-unit integers (not a real simulation). */
ResultIntegers
fakeIntegers(std::uint32_t seed)
{
    ResultIntegers integers;
    integers.instructions = 1000 + seed;
    integers.cycles = 2000 + seed * 7;
    integers.condBranches = 100 + seed;
    integers.condMispredicts = seed;
    integers.usefulFetches = 500 + seed;
    integers.fetchedInsts = 600 + seed;
    return integers;
}

SchedOptions
fastOptions()
{
    SchedOptions options;
    options.leaseTimeoutSeconds = 10.0;
    options.stragglerK = 3.0;
    options.minMedianSamples = 2;
    return options;
}

TEST(Sched, WorkStealingHandsOutLowestPendingIndex)
{
    const auto units = testUnits();
    ASSERT_EQ(units.size(), 4u);
    Scheduler sched(units, fastOptions());
    LeaseGrant g1, g2, g3;
    EXPECT_EQ(sched.acquire("w1", 0.0, g1), AcquireStatus::Granted);
    EXPECT_EQ(g1.unitIndex, 0u);
    EXPECT_EQ(g1.hash, units[0].hash);
    // A second worker steals from the shared pool, not a partition.
    EXPECT_EQ(sched.acquire("w2", 0.0, g2), AcquireStatus::Granted);
    EXPECT_EQ(g2.unitIndex, 1u);
    EXPECT_EQ(sched.acquire("w1", 0.1, g3), AcquireStatus::Granted);
    EXPECT_EQ(g3.unitIndex, 2u);
    EXPECT_EQ(sched.leasesIssued(), 3u);
    EXPECT_GT(g1.renewSeconds, 0.0);
    EXPECT_LT(g1.renewSeconds, fastOptions().leaseTimeoutSeconds);
}

TEST(Sched, CompleteFoldsAndFinishes)
{
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    double now = 0.0;
    while (!sched.done()) {
        LeaseGrant grant;
        const AcquireStatus status = sched.acquire("w1", now, grant);
        ASSERT_EQ(status, AcquireStatus::Granted);
        now += 1.0;
        EXPECT_EQ(sched.complete("w1", grant.hash,
                                 fakeIntegers(grant.unitIndex), now),
                  Scheduler::CompleteStatus::Accepted);
    }
    EXPECT_EQ(sched.completedUnits(), units.size());
    LeaseGrant grant;
    EXPECT_EQ(sched.acquire("w2", now, grant), AcquireStatus::Done);
    EXPECT_EQ(sched.leasesExpired(), 0u);
    EXPECT_EQ(sched.redispatches(), 0u);
}

TEST(Sched, StreamingMergeMatchesSharedRendererByteForByte)
{
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    std::vector<ResultIntegers> integers(units.size());
    std::vector<bool> filled(units.size(), true);
    for (std::uint32_t i = 0; i < units.size(); ++i)
        integers[i] = fakeIntegers(i);
    // Deliver out of order: the fold must not depend on arrival order.
    double now = 0.0;
    for (const std::uint32_t i : {2u, 0u, 3u, 1u}) {
        LeaseGrant grant;
        sched.acquire("w1", now, grant);
        ASSERT_EQ(sched.complete("w1", units[i].hash, integers[i],
                                 now += 1.0),
                  Scheduler::CompleteStatus::Accepted);
    }
    ASSERT_TRUE(sched.done());
    EXPECT_EQ(sched.renderResults(), renderResultsDoc(units, integers));
}

TEST(Sched, LeaseExpiryReturnsUnitToPool)
{
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    LeaseGrant grant;
    ASSERT_EQ(sched.acquire("victim", 0.0, grant),
              AcquireStatus::Granted);
    EXPECT_EQ(grant.unitIndex, 0u);
    // The worker dies; nothing renews. Before the timeout the unit is
    // not handed out again (w2 gets the next index instead).
    LeaseGrant other;
    ASSERT_EQ(sched.acquire("w2", 5.0, other), AcquireStatus::Granted);
    EXPECT_EQ(other.unitIndex, 1u);
    // After the timeout the lease is revoked and unit 0 is pending
    // again — the crashed worker's unit is re-dispatched.
    sched.tick(10.5);
    EXPECT_EQ(sched.leasesExpired(), 1u);
    LeaseGrant retry;
    ASSERT_EQ(sched.acquire("w2", 10.6, retry), AcquireStatus::Granted);
    EXPECT_EQ(retry.unitIndex, 0u);
    EXPECT_EQ(retry.hash, units[0].hash);
}

TEST(Sched, RenewKeepsSlowWorkerAlive)
{
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    LeaseGrant grant;
    ASSERT_EQ(sched.acquire("w1", 0.0, grant), AcquireStatus::Granted);
    for (double t = 3.0; t <= 30.0; t += 3.0)
        EXPECT_TRUE(sched.renew("w1", grant.hash, t));
    sched.tick(31.0); // well past the original 10s deadline
    EXPECT_EQ(sched.leasesExpired(), 0u);
    // But renewing a lease that was never granted fails.
    EXPECT_FALSE(sched.renew("w2", grant.hash, 31.0));
    EXPECT_FALSE(sched.renew("w1", "0123456789abcdef", 31.0));
}

TEST(Sched, StragglerIsRedispatchedAndFirstFragmentWins)
{
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    // w1 takes unit 0 and stalls; w2 completes the rest quickly,
    // establishing a ~1s median.
    LeaseGrant slow;
    ASSERT_EQ(sched.acquire("w1", 0.0, slow), AcquireStatus::Granted);
    double now = 0.0;
    for (std::uint32_t i = 1; i < units.size(); ++i) {
        LeaseGrant grant;
        ASSERT_EQ(sched.acquire("w2", now, grant),
                  AcquireStatus::Granted);
        EXPECT_EQ(grant.unitIndex, i);
        ASSERT_EQ(sched.complete("w2", grant.hash, fakeIntegers(i),
                                 now += 1.0),
                  Scheduler::CompleteStatus::Accepted);
        sched.renew("w1", slow.hash, now); // w1 is slow, not dead
    }
    // No fresh units remain. Before k x median elapses w2 must wait...
    LeaseGrant spec;
    EXPECT_EQ(sched.acquire("w2", now, spec), AcquireStatus::Wait);
    EXPECT_EQ(sched.redispatches(), 0u);
    // ...and past it, unit 0 is speculatively re-dispatched to w2.
    now = 10.0; // elapsed 10s > 3 x 1s median
    sched.renew("w1", slow.hash, now);
    ASSERT_EQ(sched.acquire("w2", now, spec), AcquireStatus::Granted);
    EXPECT_EQ(spec.unitIndex, 0u);
    EXPECT_EQ(spec.hash, slow.hash);
    EXPECT_EQ(sched.redispatches(), 1u);
    // The same unit is not handed out a third time.
    LeaseGrant third;
    EXPECT_EQ(sched.acquire("w3", now + 0.1, third),
              AcquireStatus::Wait);
    // w2's copy lands first and wins; w1's late duplicate is counted
    // and dropped, and the sweep is done.
    EXPECT_EQ(sched.complete("w2", spec.hash, fakeIntegers(0),
                             now + 0.5),
              Scheduler::CompleteStatus::Accepted);
    EXPECT_EQ(sched.complete("w1", slow.hash, fakeIntegers(0),
                             now + 2.0),
              Scheduler::CompleteStatus::Duplicate);
    EXPECT_EQ(sched.duplicates(), 1u);
    EXPECT_TRUE(sched.done());
    // The duplicate did not corrupt the merge.
    std::vector<ResultIntegers> integers(units.size());
    for (std::uint32_t i = 0; i < units.size(); ++i)
        integers[i] = fakeIntegers(i);
    EXPECT_EQ(sched.renderResults(), renderResultsDoc(units, integers));
}

TEST(Sched, CompleteAcceptedFromLeaselessWorker)
{
    // A worker whose lease expired while its fragment was in flight
    // still delivers valid work.
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    LeaseGrant grant;
    ASSERT_EQ(sched.acquire("w1", 0.0, grant), AcquireStatus::Granted);
    sched.tick(20.0);
    EXPECT_EQ(sched.leasesExpired(), 1u);
    EXPECT_EQ(sched.complete("w1", grant.hash, fakeIntegers(0), 21.0),
              Scheduler::CompleteStatus::Accepted);
    EXPECT_EQ(sched.completedUnits(), 1u);
}

TEST(Sched, CompleteRejectsUnknownHash)
{
    Scheduler sched(testUnits(), fastOptions());
    EXPECT_EQ(sched.complete("w1", "feedfacecafebeef", fakeIntegers(0),
                             1.0),
              Scheduler::CompleteStatus::Unknown);
    EXPECT_EQ(sched.completedUnits(), 0u);
}

TEST(Sched, ResumeSkipsPrefilledUnits)
{
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    EXPECT_TRUE(sched.markCompleted(units[0].hash, fakeIntegers(0)));
    EXPECT_TRUE(sched.markCompleted(units[2].hash, fakeIntegers(2)));
    EXPECT_FALSE(sched.markCompleted(units[0].hash, fakeIntegers(0)))
        << "double prefill must be rejected";
    EXPECT_FALSE(sched.markCompleted("feedfacecafebeef", {}));
    // Only the holes are dispatched.
    LeaseGrant g1, g2;
    ASSERT_EQ(sched.acquire("w1", 0.0, g1), AcquireStatus::Granted);
    EXPECT_EQ(g1.unitIndex, 1u);
    ASSERT_EQ(sched.acquire("w1", 0.0, g2), AcquireStatus::Granted);
    EXPECT_EQ(g2.unitIndex, 3u);
    sched.complete("w1", g1.hash, fakeIntegers(1), 1.0);
    sched.complete("w1", g2.hash, fakeIntegers(3), 2.0);
    ASSERT_TRUE(sched.done());
    std::vector<ResultIntegers> integers(units.size());
    for (std::uint32_t i = 0; i < units.size(); ++i)
        integers[i] = fakeIntegers(i);
    EXPECT_EQ(sched.renderResults(), renderResultsDoc(units, integers));
}

TEST(Sched, PartialAndStatusDocumentsAreWellFormed)
{
    const auto units = testUnits();
    Scheduler sched(units, fastOptions());
    LeaseGrant grant;
    sched.acquire("w1", 0.0, grant);
    sched.complete("w1", grant.hash, fakeIntegers(0), 1.5);
    sched.acquire("w1", 1.5, grant);

    std::string error;
    const auto partial = json::parse(sched.renderPartial(), &error);
    ASSERT_TRUE(partial.has_value()) << error;
    EXPECT_EQ(partial->getString("schema"), "tcsim-bench-partial-v1");
    EXPECT_EQ(partial->getUint64("units"), units.size());
    EXPECT_EQ(partial->getUint64("completed"), 1u);

    const auto status = json::parse(sched.renderStatus(2.0), &error);
    ASSERT_TRUE(status.has_value()) << error;
    EXPECT_EQ(status->getString("schema"), "tcsim-sched-status-v1");
    EXPECT_EQ(status->getString("matrix_hash"), matrixHash(units));
    EXPECT_EQ(status->getUint64("units"), units.size());
    EXPECT_EQ(status->getUint64("completed"), 1u);
    EXPECT_EQ(status->getUint64("in_flight"), 1u);
    EXPECT_EQ(status->getUint64("pending"), units.size() - 2);
    const json::Value *workers = status->find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_EQ(workers->items().size(), 1u);
    EXPECT_EQ(workers->items()[0].getString("worker"), "w1");
    EXPECT_EQ(workers->items()[0].getUint64("completed"), 1u);
    EXPECT_EQ(workers->items()[0].getUint64("active_leases"), 1u);
}

} // namespace
