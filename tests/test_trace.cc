/**
 * @file
 * Tests for the trace cache and the fill unit: segment construction
 * rules, finalize reasons, promotion embedding, and all four packing
 * policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/fill_unit.h"
#include "trace/segment.h"
#include "trace/trace_cache.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace tcsim::trace
{
namespace
{

using isa::Instruction;
using isa::Opcode;

Instruction
alu()
{
    return Instruction{Opcode::Add, 10, 11, 12, 0};
}

Instruction
branch(std::int32_t disp = 8)
{
    return Instruction{Opcode::Bne, 0, 4, 0, disp};
}

/** Drives a fill unit with a synthetic retire stream. */
class FillDriver
{
  public:
    FillDriver(const FillUnitParams &params)
        : cache_(TraceCacheParams{64, 4}), unit_(params, cache_)
    {
    }

    /** Retire @p payload ALU instructions then one block terminator. */
    void
    block(unsigned payload, Opcode term = Opcode::Bne, bool taken = false,
          std::int32_t disp = 8)
    {
        for (unsigned i = 0; i < payload; ++i)
            inst(alu());
        Instruction t;
        t.op = term;
        t.rs1 = 4;
        t.imm = disp;
        if (term == Opcode::Ret)
            t.rs1 = isa::kRegRa;
        inst(t, taken);
    }

    void
    inst(const Instruction &instruction, bool taken = false)
    {
        RetiredInst retired;
        retired.inst = instruction;
        retired.pc = nextPc_;
        retired.taken = taken;
        nextPc_ += isa::kInstBytes;
        unit_.retire(retired);
    }

    TraceCache cache_;
    FillUnit unit_;
    Addr nextPc_ = 0x1000;
};

FillUnitParams
params(PackingPolicy policy, unsigned granule = 2, bool promotion = false,
       unsigned threshold = 4)
{
    FillUnitParams p;
    p.packing = policy;
    p.packingGranule = granule;
    p.promotion = promotion;
    p.biasTable.entries = 256;
    p.biasTable.promoteThreshold = threshold;
    return p;
}

// ----------------------------------------------------------------------
// TraceCache storage.
// ----------------------------------------------------------------------

TraceSegment
segmentAt(Addr start, unsigned len = 4)
{
    TraceSegment seg;
    seg.startAddr = start;
    for (unsigned i = 0; i < len; ++i) {
        TraceInst ti;
        ti.inst = alu();
        ti.pc = start + Addr{i} * isa::kInstBytes;
        seg.insts.push_back(ti);
    }
    return seg;
}

TEST(TraceCacheStore, LookupMissThenHit)
{
    TraceCache tc(TraceCacheParams{64, 4});
    EXPECT_EQ(tc.lookup(0x1000), nullptr);
    tc.insert(segmentAt(0x1000));
    const TraceSegment *seg = tc.lookup(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->startAddr, 0x1000u);
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.lookups(), 2u);
}

TEST(TraceCacheStore, NoPathAssociativity)
{
    TraceCache tc(TraceCacheParams{64, 4});
    tc.insert(segmentAt(0x1000, 4));
    tc.insert(segmentAt(0x1000, 7)); // same start: replaces in place
    EXPECT_EQ(tc.sameStartReplacements(), 1u);
    const TraceSegment *seg = tc.lookup(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 7u);
}

TEST(TraceCacheStore, LruEvictionWithinSet)
{
    TraceCache tc(TraceCacheParams{8, 2}); // 4 sets x 2 ways
    // Three segments in the same set (stride = numSets * 4 bytes).
    const Addr stride = 4 * isa::kInstBytes;
    tc.insert(segmentAt(0x1000));
    tc.insert(segmentAt(0x1000 + stride));
    tc.lookup(0x1000); // refresh
    tc.insert(segmentAt(0x1000 + 2 * stride));
    EXPECT_NE(tc.peek(0x1000), nullptr);
    EXPECT_EQ(tc.peek(0x1000 + stride), nullptr); // LRU victim
}

TEST(TraceCacheStore, PeekDoesNotCountStats)
{
    TraceCache tc(TraceCacheParams{64, 4});
    tc.insert(segmentAt(0x1000));
    tc.peek(0x1000);
    EXPECT_EQ(tc.lookups(), 0u);
}

TEST(TraceCacheStore, Flush)
{
    TraceCache tc(TraceCacheParams{64, 4});
    tc.insert(segmentAt(0x1000));
    tc.flush();
    EXPECT_EQ(tc.peek(0x1000), nullptr);
}

// ----------------------------------------------------------------------
// Fill unit: atomic policy.
// ----------------------------------------------------------------------

TEST(FillAtomic, ThreeBlocksFinalizeOnMaxBranches)
{
    FillDriver d(params(PackingPolicy::Atomic));
    d.block(3); // 4 insts each
    d.block(3);
    d.block(3);
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 12u);
    EXPECT_EQ(seg->numBlockBranches, 3u);
    EXPECT_EQ(seg->reason, FillReason::MaxBranches);
}

TEST(FillAtomic, OversizedMergeRefused)
{
    FillDriver d(params(PackingPolicy::Atomic));
    d.block(9);  // 10 insts pending
    d.block(8);  // 9 insts: does not fit in 6 free slots
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 10u);
    EXPECT_EQ(seg->reason, FillReason::AtomicBlock);
    // The second block starts a fresh pending segment (not yet final).
    EXPECT_EQ(d.cache_.peek(0x1000 + 10 * isa::kInstBytes), nullptr);
}

TEST(FillAtomic, ExactFitFinalizesMaxSize)
{
    FillDriver d(params(PackingPolicy::Atomic));
    d.block(7);
    d.block(7); // 8 + 8 = 16
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 16u);
    EXPECT_EQ(seg->reason, FillReason::MaxSize);
}

TEST(FillAtomic, ReturnTerminatesSegment)
{
    FillDriver d(params(PackingPolicy::Atomic));
    d.block(2);
    d.block(1, Opcode::Ret);
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->reason, FillReason::RetIndirTrap);
    EXPECT_EQ(seg->size(), 5u);
}

TEST(FillAtomic, IndirectAndTrapTerminate)
{
    for (const Opcode op : {Opcode::Jr, Opcode::Trap}) {
        FillDriver d(params(PackingPolicy::Atomic));
        d.block(1, op);
        EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
        EXPECT_EQ(d.unit_.reasonCount(FillReason::RetIndirTrap), 1u);
    }
}

TEST(FillAtomic, CallsAndJumpsEmbedded)
{
    FillDriver d(params(PackingPolicy::Atomic));
    d.inst(alu());
    d.inst(Instruction{Opcode::Call, isa::kRegRa, 0, 0, 100});
    d.inst(alu());
    d.inst(Instruction{Opcode::J, 0, 0, 0, 50});
    d.inst(alu());
    d.block(0); // terminating branch
    d.block(0, Opcode::Ret); // flush the pending segment
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 7u);
    EXPECT_EQ(seg->numBlockBranches, 1u);
}

TEST(FillAtomic, HugeBlockForcedSplit)
{
    FillDriver d(params(PackingPolicy::Atomic));
    // 40 payload + branch: blocks > 16 must split in every policy.
    d.block(40);
    EXPECT_GE(d.unit_.segmentsBuilt(), 2u);
    const TraceSegment *first = d.cache_.peek(0x1000);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->size(), 16u);
    EXPECT_EQ(first->reason, FillReason::MaxSize);
}

TEST(FillAtomic, EmbeddedDirectionRecorded)
{
    FillDriver d(params(PackingPolicy::Atomic));
    d.block(2, Opcode::Bne, true, -2);
    d.block(2, Opcode::Bne, false);
    d.block(2, Opcode::Bne, true);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_TRUE(seg->insts[2].builtTaken);
    EXPECT_FALSE(seg->insts[5].builtTaken);
    EXPECT_TRUE(seg->hasTightBackwardBranch);
}

// ----------------------------------------------------------------------
// Fill unit: packing policies.
// ----------------------------------------------------------------------

TEST(FillPacking, UnregulatedSplitsAnywhere)
{
    FillDriver d(params(PackingPolicy::Unregulated));
    d.block(9); // 10 insts
    d.block(8); // 9 insts: 6 spill into the pending segment
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 16u);
    EXPECT_EQ(seg->reason, FillReason::MaxSize);
}

TEST(FillPacking, RemainderBeginsNextSegment)
{
    FillDriver d(params(PackingPolicy::Unregulated));
    d.block(9);
    d.block(8);
    d.block(1, Opcode::Ret); // flush the remainder
    EXPECT_EQ(d.unit_.segmentsBuilt(), 2u);
    // Remainder segment starts exactly where the split happened.
    const Addr second_start = 0x1000 + 16 * isa::kInstBytes;
    const TraceSegment *seg = d.cache_.peek(second_start);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 3u + 2u);
}

TEST(FillPacking, NRegulatedPacksMultiplesOnly)
{
    FillDriver d(params(PackingPolicy::NRegulated, 4));
    d.block(9);  // pending 10, free 6
    d.block(8);  // 9 insts: allowance = 4 (granule 4)
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 14u); // 10 + 4
    EXPECT_EQ(seg->reason, FillReason::AtomicBlock);
}

TEST(FillPacking, NRegulatedGranuleTwo)
{
    FillDriver d(params(PackingPolicy::NRegulated, 2));
    d.block(8);  // pending 9, free 7
    d.block(9);  // allowance = 6
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 15u); // 9 + 6
}

TEST(FillPacking, CostRegulatedPacksWhenHalfFree)
{
    // Pending 8 insts: free = 8 >= pending/2 -> pack.
    FillDriver d(params(PackingPolicy::CostRegulated));
    d.block(7);  // pending 8
    d.block(10); // 11 insts, does not fit entirely
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 16u);
}

TEST(FillPacking, CostRegulatedRefusesWhenNearlyFull)
{
    // Pending 13: free = 3 < 13/2 and no tight backward branch.
    FillDriver d(params(PackingPolicy::CostRegulated));
    d.block(5);
    d.block(6); // pending 13
    d.block(8); // does not fit; cost rule refuses
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 13u);
    EXPECT_EQ(seg->reason, FillReason::AtomicBlock);
}

TEST(FillPacking, CostRegulatedPacksTightLoops)
{
    // Same shape, but the pending segment holds a tight backward
    // branch (displacement <= 32): the loop-unrolling payoff rule.
    FillDriver d(params(PackingPolicy::CostRegulated));
    d.block(5, Opcode::Bne, true, -4);
    d.block(6); // pending 13, tight backward branch present
    d.block(8); // packs 3 despite the near-full pending segment
    EXPECT_EQ(d.unit_.segmentsBuilt(), 1u);
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_EQ(seg->size(), 16u);
    EXPECT_EQ(seg->reason, FillReason::MaxSize);
}

// ----------------------------------------------------------------------
// Fill unit: promotion.
// ----------------------------------------------------------------------

TEST(FillPromotion, EmbedsPromotedBranchMidBlock)
{
    FillDriver d(params(PackingPolicy::Atomic, 2, true, 3));
    const Addr branch_pc = d.nextPc_ + 2 * isa::kInstBytes;
    // Execute the same 3-inst block (alu alu branch-taken) repeatedly
    // by replaying the same pc range.
    for (int rep = 0; rep < 6; ++rep) {
        d.nextPc_ = 0x1000;
        d.block(2, Opcode::Bne, true);
    }
    // Flush the open block so the promoted copies reach a segment.
    d.inst(Instruction{Opcode::Ret, 0, isa::kRegRa, 0, 0});
    // After threshold is reached, the branch stops ending blocks and
    // segments embed it as promoted.
    EXPECT_GT(d.unit_.promotedEmbedded(), 0u);
    EXPECT_TRUE(d.unit_.biasTable().advice(branch_pc).promote);
}

TEST(FillPromotion, PromotedBranchDoesNotCountAgainstLimit)
{
    FillUnitParams p = params(PackingPolicy::Atomic, 2, true, 2);
    FillDriver d(p);
    // Warm the bias table: run the loop body twice.
    for (int rep = 0; rep < 3; ++rep) {
        d.nextPc_ = 0x1000;
        d.block(1, Opcode::Bne, true);
    }
    // Now the branch at 0x1004 is promoted. Replay a longer stream:
    // four copies of the block all fit one segment (no block-ending
    // branches at all), finalized only by size or a terminator.
    d.nextPc_ = 0x1000;
    for (int rep = 0; rep < 4; ++rep) {
        d.nextPc_ = 0x1000;
        d.block(1, Opcode::Bne, true);
    }
    d.inst(Instruction{Opcode::Ret, 0, isa::kRegRa, 0, 0});
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_GT(seg->size(), 6u) << "promoted branches must not end blocks";
    unsigned promoted = 0;
    for (const TraceInst &ti : seg->insts)
        promoted += ti.promoted;
    EXPECT_GE(promoted, 2u);
}

TEST(FillPromotion, DirectionMismatchEmbedsAsNormalBranch)
{
    // A promoted-taken branch retiring not-taken must be embedded as a
    // normal block-ending branch (the segment continues on the
    // not-taken path, contradicting the static direction).
    FillDriver d(params(PackingPolicy::Atomic, 2, true, 2));
    for (int rep = 0; rep < 4; ++rep) {
        d.nextPc_ = 0x1000;
        d.block(1, Opcode::Bne, true);
    }
    // Final iteration: the branch falls through.
    d.nextPc_ = 0x1000;
    d.block(1, Opcode::Bne, false);
    d.inst(Instruction{Opcode::Ret, 0, isa::kRegRa, 0, 0});
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    // The last embedded copy of the branch ends a block.
    bool found_normal = false;
    for (const TraceInst &ti : seg->insts) {
        if (isa::isCondBranch(ti.inst.op) && !ti.builtTaken) {
            EXPECT_FALSE(ti.promoted);
            EXPECT_TRUE(ti.endsBlock);
            found_normal = true;
        }
    }
    EXPECT_TRUE(found_normal);
}

TEST(FillPromotion, MeanSegmentSizeGrowsWithPromotion)
{
    // With promotion, segments are longer on the same biased stream.
    auto run = [](bool promotion) {
        FillDriver d(params(PackingPolicy::Atomic, 2, promotion, 2));
        for (int rep = 0; rep < 200; ++rep) {
            d.nextPc_ = 0x1000 + (rep % 4) * 0x40;
            d.block(2, Opcode::Bne, true);
            d.block(2, Opcode::Bne, true);
        }
        return d.unit_.meanSegmentSize();
    };
    EXPECT_GT(run(true), run(false));
}

} // namespace
} // namespace tcsim::trace

namespace tcsim::trace
{
namespace
{

TEST(TraceCachePathAssoc, SameStartSegmentsCoexist)
{
    TraceCacheParams params{64, 4, true};
    TraceCache tc(params);
    TraceSegment a = segmentAt(0x1000, 4);
    a.insts[1].inst = isa::Instruction{Opcode::Bne, 0, 4, 0, 8};
    a.insts[1].builtTaken = true;
    TraceSegment b = segmentAt(0x1000, 4);
    b.insts[1].inst = isa::Instruction{Opcode::Bne, 0, 4, 0, 8};
    b.insts[1].builtTaken = false;
    tc.insert(std::move(a));
    tc.insert(std::move(b));
    EXPECT_EQ(tc.sameStartReplacements(), 0u);
    std::vector<const TraceSegment *> candidates;
    tc.lookupAll(0x1000, candidates);
    EXPECT_EQ(candidates.size(), 2u);
}

TEST(TraceCachePathAssoc, IdenticalPathReplacesInPlace)
{
    TraceCacheParams params{64, 4, true};
    TraceCache tc(params);
    tc.insert(segmentAt(0x1000, 4));
    tc.insert(segmentAt(0x1000, 4));
    EXPECT_EQ(tc.sameStartReplacements(), 1u);
}

TEST(FillStaticPromotion, PromotesFromStaticSet)
{
    FillUnitParams p = params(PackingPolicy::Atomic);
    p.staticPromotion = true;
    // The branch emitted by block(2) lands at 0x1008.
    p.staticPromotions.emplace(0x1008, true);
    FillDriver d(p);
    d.block(2, Opcode::Bne, true); // matches the static direction
    d.inst(Instruction{Opcode::Ret, 0, isa::kRegRa, 0, 0});
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_TRUE(seg->insts[2].promoted);
    EXPECT_TRUE(seg->insts[2].promotedDir);
    EXPECT_EQ(seg->numBlockBranches, 0u);
}

TEST(FillStaticPromotion, DirectionMismatchStaysNormal)
{
    FillUnitParams p = params(PackingPolicy::Atomic);
    p.staticPromotion = true;
    p.staticPromotions.emplace(0x1008, true);
    FillDriver d(p);
    d.block(2, Opcode::Bne, false); // retires against the static dir
    d.inst(Instruction{Opcode::Ret, 0, isa::kRegRa, 0, 0});
    const TraceSegment *seg = d.cache_.peek(0x1000);
    ASSERT_NE(seg, nullptr);
    EXPECT_FALSE(seg->insts[2].promoted);
    EXPECT_TRUE(seg->insts[2].endsBlock);
}

TEST(FillResync, MissAddressStartsFreshSegment)
{
    FillDriver d(params(PackingPolicy::Unregulated));
    d.unit_.noteFetchMiss(0x1000 + 3 * isa::kInstBytes);
    d.block(2); // block [0x1000..0x1008]; next block starts at 0x100c
    d.block(2);
    d.inst(Instruction{Opcode::Ret, 0, isa::kRegRa, 0, 0});
    // The pending segment was finalized at the miss address, so a
    // segment starting exactly there exists.
    EXPECT_NE(d.cache_.peek(0x1000 + 3 * isa::kInstBytes), nullptr);
    EXPECT_NE(d.cache_.peek(0x1000), nullptr);
}

} // namespace
} // namespace tcsim::trace

namespace tcsim::trace
{
namespace
{

/**
 * Property test: drive the fill unit with the architectural retire
 * stream of a real generated benchmark under every policy combination
 * and check the structural invariants of every resident segment.
 */
class FillProperty
    : public ::testing::TestWithParam<std::tuple<PackingPolicy, bool>>
{
};

TEST_P(FillProperty, SegmentInvariantsHold)
{
    const auto &[policy, promotion] = GetParam();

    workload::BenchmarkProfile profile =
        workload::findProfile("compress");
    profile.numFunctions = 10;
    workload::Program program = workload::generateProgram(profile);
    workload::FunctionalExecutor exec(program);

    FillUnitParams fill_params;
    fill_params.packing = policy;
    fill_params.packingGranule = 2;
    fill_params.promotion = promotion;
    fill_params.biasTable.promoteThreshold = 16;
    TraceCache cache(TraceCacheParams{256, 4});
    FillUnit unit(fill_params, cache);

    for (int i = 0; i < 150000 && !exec.halted(); ++i) {
        const workload::StepResult step = exec.step();
        RetiredInst retired;
        retired.inst = step.inst;
        retired.pc = step.pc;
        retired.taken = step.taken;
        unit.retire(retired);
    }

    unsigned segments = 0;
    cache.forEachResident([&](const TraceSegment &seg) {
        ++segments;
        ASSERT_GE(seg.size(), 1u);
        ASSERT_LE(seg.size(), kMaxSegmentInsts);

        unsigned block_branches = 0;
        for (unsigned i = 0; i < seg.size(); ++i) {
            const TraceInst &ti = seg.insts[i];
            // Classification consistency.
            if (isa::isCondBranch(ti.inst.op)) {
                EXPECT_NE(ti.promoted, ti.endsBlock)
                    << "a conditional branch either ends a block or "
                       "is promoted";
                if (ti.promoted)
                    EXPECT_EQ(ti.promotedDir, ti.builtTaken);
            } else {
                EXPECT_FALSE(ti.endsBlock);
                EXPECT_FALSE(ti.promoted);
            }
            block_branches += ti.endsBlock;

            // Segment terminators appear only in the last slot.
            const bool terminator = isa::isReturn(ti.inst.op) ||
                                    isa::isIndirectJump(ti.inst.op) ||
                                    isa::isSerializing(ti.inst.op);
            if (i + 1 < seg.size()) {
                EXPECT_FALSE(terminator)
                    << "terminator mid-segment at " << i;
                // Physical contiguity of the embedded path.
                EXPECT_EQ(seg.insts[i + 1].pc, ti.embeddedNextPc())
                    << "path break at slot " << i << " of "
                    << seg.toString();
            }
        }
        EXPECT_EQ(block_branches, seg.numBlockBranches);
        EXPECT_LE(block_branches, kMaxSegmentBranches);
        EXPECT_EQ(seg.startAddr, seg.insts.front().pc);
        if (!promotion)
            EXPECT_EQ(unit.promotedEmbedded(), 0u);

        switch (seg.reason) {
          case FillReason::MaxSize:
            EXPECT_EQ(seg.size(), kMaxSegmentInsts);
            break;
          case FillReason::MaxBranches:
            EXPECT_EQ(seg.numBlockBranches, kMaxSegmentBranches);
            break;
          case FillReason::RetIndirTrap: {
            const isa::Opcode last = seg.insts.back().inst.op;
            EXPECT_TRUE(isa::isReturn(last) ||
                        isa::isIndirectJump(last) ||
                        isa::isSerializing(last));
            break;
          }
          case FillReason::AtomicBlock:
          case FillReason::Resync:
            break;
        }
    });
    EXPECT_GT(segments, 10u);
    EXPECT_GT(unit.segmentsBuilt(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FillProperty,
    ::testing::Combine(
        ::testing::Values(PackingPolicy::Atomic,
                          PackingPolicy::Unregulated,
                          PackingPolicy::NRegulated,
                          PackingPolicy::CostRegulated),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<PackingPolicy, bool>>
           &param_info) {
        std::string name =
            packingPolicyName(std::get<0>(param_info.param));
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name + (std::get<1>(param_info.param) ? "_promo" : "_plain");
    });

/** Canonical dump of every field the simulator reads from a segment. */
std::string
dumpSegment(const TraceSegment &seg)
{
    std::ostringstream os;
    os << std::hex << seg.startAddr << std::dec << '/'
       << static_cast<unsigned>(seg.reason) << '/'
       << seg.numBlockBranches << '/' << seg.hasTightBackwardBranch
       << '/' << seg.blockBranchDirs;
    for (const TraceInst &ti : seg.insts) {
        os << '|' << isa::encode(ti.inst) << ',' << ti.pc << ','
           << ti.promoted << ti.promotedDir << ti.endsBlock
           << ti.builtTaken;
    }
    return os.str();
}

TEST(FillBufferReuse, RecycledBuffersLeaveNoStaleState)
{
    // The fill unit recycles the pending segment's instruction buffer
    // through TraceCache::insert instead of allocating per segment.
    // Build the same stream on a fresh unit and on one whose buffers
    // have already cycled through hundreds of varied segments: the
    // resulting resident segments must match field for field.
    auto stream = [](FillDriver &d) {
        for (unsigned i = 0; i < 64; ++i) {
            d.block(3 + i % 9, Opcode::Bne, i % 2 == 0,
                    i % 5 == 0 ? -8 : 8);
            if (i % 7 == 0)
                d.block(2, Opcode::Ret);
        }
        d.block(0, Opcode::Ret); // drain the pending segment
    };
    auto collect = [](const FillDriver &d) {
        std::vector<std::string> segs;
        d.cache_.forEachResident([&](const TraceSegment &seg) {
            segs.push_back(dumpSegment(seg));
        });
        std::sort(segs.begin(), segs.end());
        return segs;
    };

    FillDriver fresh(params(PackingPolicy::CostRegulated));
    stream(fresh);

    FillDriver reused(params(PackingPolicy::CostRegulated));
    for (unsigned i = 0; i < 300; ++i)
        reused.block(i % 14, i % 3 == 0 ? Opcode::Ret : Opcode::Bne,
                     i % 2 == 1, i % 4 == 0 ? -8 : 8);
    reused.block(0, Opcode::Ret);
    reused.cache_.flush();
    reused.nextPc_ = 0x1000;
    stream(reused);

    EXPECT_EQ(collect(fresh), collect(reused));
}

} // namespace
} // namespace tcsim::trace
