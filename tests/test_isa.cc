/**
 * @file
 * Unit and property tests for the µRISC ISA: encode/decode round
 * trips, classification predicates, and operand semantics.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/instruction.h"

namespace tcsim::isa
{
namespace
{

std::vector<Opcode>
allOpcodes()
{
    std::vector<Opcode> ops;
    for (unsigned o = 0; o < static_cast<unsigned>(Opcode::NumOpcodes);
         ++o) {
        ops.push_back(static_cast<Opcode>(o));
    }
    return ops;
}

/** Build a canonical, encodable instruction for @p op. */
Instruction
sampleInst(Opcode op, Rng &rng)
{
    Instruction inst;
    inst.op = op;
    const auto reg = [&] {
        return static_cast<RegIndex>(rng.below(kNumArchRegs));
    };
    if (isCondBranch(op)) {
        inst.rs1 = reg();
        inst.rs2 = reg();
        inst.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
    } else if (op == Opcode::J || op == Opcode::Call) {
        inst.imm = static_cast<std::int32_t>(
            rng.range(-(1 << 25), (1 << 25) - 1));
        if (op == Opcode::Call)
            inst.rd = kRegRa;
    } else if (op == Opcode::Jr) {
        inst.rs1 = reg();
    } else if (op == Opcode::Ret) {
        inst.rs1 = kRegRa;
    } else if (op == Opcode::Ld) {
        inst.rd = reg();
        inst.rs1 = reg();
        inst.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
    } else if (op == Opcode::St) {
        inst.rs1 = reg();
        inst.rs2 = reg();
        inst.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
    } else if (op == Opcode::Trap || op == Opcode::Halt ||
               op == Opcode::Nop) {
        // no operands
    } else if (instClass(op) == InstClass::IntAlu ||
               instClass(op) == InstClass::IntMult ||
               instClass(op) == InstClass::IntDiv) {
        inst.rd = reg();
        inst.rs1 = reg();
        const bool is_imm = op >= Opcode::Addi && op <= Opcode::Lui;
        const bool logical = op == Opcode::Andi || op == Opcode::Ori ||
                             op == Opcode::Xori || op == Opcode::Lui;
        if (logical)
            inst.imm = static_cast<std::int32_t>(rng.range(0, 65535));
        else if (is_imm)
            inst.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
        else
            inst.rs2 = reg();
        if (op == Opcode::Lui)
            inst.rs1 = 0;
    }
    return inst;
}

class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(OpcodeRoundTrip, EncodeDecodeIsIdentity)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
    for (int i = 0; i < 64; ++i) {
        const Instruction inst = sampleInst(GetParam(), rng);
        const Instruction round = decode(encode(inst));
        EXPECT_EQ(round, inst)
            << "opcode " << opcodeName(GetParam()) << " iteration " << i;
    }
}

TEST_P(OpcodeRoundTrip, DisassemblesNonEmpty)
{
    Rng rng(7);
    const Instruction inst = sampleInst(GetParam(), rng);
    EXPECT_FALSE(disassemble(inst, 0x1000).empty());
    EXPECT_NE(disassemble(inst, 0x1000).find(opcodeName(GetParam())),
              std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::ValuesIn(allOpcodes()),
    [](const ::testing::TestParamInfo<Opcode> &param_info) {
        std::string name = opcodeName(param_info.param);
        return name;
    });

TEST(IsaClassify, ControlPredicatesArePartition)
{
    for (const Opcode op : allOpcodes()) {
        const int classes = isCondBranch(op) + isUncondDirect(op) +
                            isReturn(op) + isIndirectJump(op) +
                            isSerializing(op);
        EXPECT_LE(classes, 1) << opcodeName(op);
        EXPECT_EQ(isControl(op), classes == 1) << opcodeName(op);
    }
}

TEST(IsaClassify, BranchRange)
{
    EXPECT_TRUE(isCondBranch(Opcode::Beq));
    EXPECT_TRUE(isCondBranch(Opcode::Bgeu));
    EXPECT_FALSE(isCondBranch(Opcode::J));
    EXPECT_FALSE(isCondBranch(Opcode::Addi));
}

TEST(IsaClassify, MemoryPredicates)
{
    EXPECT_TRUE(isLoad(Opcode::Ld));
    EXPECT_TRUE(isStore(Opcode::St));
    EXPECT_TRUE(isMem(Opcode::Ld));
    EXPECT_TRUE(isMem(Opcode::St));
    EXPECT_FALSE(isMem(Opcode::Add));
}

TEST(IsaClassify, InstClassLatencyBuckets)
{
    EXPECT_EQ(instClass(Opcode::Mul), InstClass::IntMult);
    EXPECT_EQ(instClass(Opcode::Div), InstClass::IntDiv);
    EXPECT_EQ(instClass(Opcode::Ld), InstClass::Load);
    EXPECT_EQ(instClass(Opcode::St), InstClass::Store);
    EXPECT_EQ(instClass(Opcode::Beq), InstClass::Control);
    EXPECT_EQ(instClass(Opcode::Trap), InstClass::Serialize);
    EXPECT_EQ(instClass(Opcode::Add), InstClass::IntAlu);
    EXPECT_EQ(instClass(Opcode::Nop), InstClass::IntAlu);
}

TEST(IsaOperands, WritesReg)
{
    Instruction add{Opcode::Add, 5, 1, 2, 0};
    EXPECT_TRUE(writesReg(add));
    add.rd = kRegZero;
    EXPECT_FALSE(writesReg(add)); // r0 writes are discarded

    Instruction store{Opcode::St, 0, 1, 2, 8};
    EXPECT_FALSE(writesReg(store));

    Instruction call{Opcode::Call, kRegRa, 0, 0, 10};
    EXPECT_TRUE(writesReg(call));

    Instruction jump{Opcode::J, 0, 0, 0, 10};
    EXPECT_FALSE(writesReg(jump));
}

TEST(IsaOperands, ReadsSources)
{
    Instruction add{Opcode::Add, 5, 1, 2, 0};
    EXPECT_TRUE(readsRs1(add));
    EXPECT_TRUE(readsRs2(add));

    Instruction addi{Opcode::Addi, 5, 1, 0, 4};
    EXPECT_TRUE(readsRs1(addi));
    EXPECT_FALSE(readsRs2(addi));

    Instruction lui{Opcode::Lui, 5, 0, 0, 4};
    EXPECT_FALSE(readsRs1(lui));

    Instruction store{Opcode::St, 0, 1, 2, 8};
    EXPECT_TRUE(readsRs1(store));
    EXPECT_TRUE(readsRs2(store));

    Instruction ret{Opcode::Ret, 0, kRegRa, 0, 0};
    EXPECT_TRUE(readsRs1(ret));
}

TEST(IsaOperands, DirectTargetArithmetic)
{
    Instruction branch{Opcode::Beq, 0, 1, 2, 4};
    EXPECT_EQ(directTarget(branch, 0x1000), 0x1010u);
    branch.imm = -4;
    EXPECT_EQ(directTarget(branch, 0x1000), 0xff0u);
    Instruction jump{Opcode::J, 0, 0, 0, 1 << 20};
    EXPECT_EQ(directTarget(jump, 0x1000), 0x1000u + (1u << 22));
}

TEST(IsaOperands, RetDecodesToRaSource)
{
    Instruction ret;
    ret.op = Opcode::Ret;
    ret.rs1 = kRegRa;
    const Instruction round = decode(encode(ret));
    EXPECT_EQ(round.rs1, kRegRa);
}

} // namespace
} // namespace tcsim::isa
