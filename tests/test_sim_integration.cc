/**
 * @file
 * Whole-system integration sweeps: every benchmark profile runs under
 * the paper's main configurations with the architectural oracle
 * verifying the retired stream instruction-for-instruction, and the
 * headline metrics land in sane ranges.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace tcsim::sim
{
namespace
{

constexpr std::uint64_t kTestInsts = 60000;

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto &profile : workload::benchmarkSuite())
        names.push_back(profile.name);
    return names;
}

ProcessorConfig
configByName(const std::string &name)
{
    if (name == "icache")
        return icacheConfig();
    if (name == "baseline")
        return baselineConfig();
    if (name == "promotion")
        return promotionConfig(64);
    if (name == "packing")
        return packingConfig();
    if (name == "promo-pack")
        return promotionPackingConfig(
            64, trace::PackingPolicy::CostRegulated);
    if (name == "speculative") {
        ProcessorConfig config = promotionPackingConfig(64);
        config.disambiguation = Disambiguation::Speculative;
        return config;
    }
    if (name == "path-assoc") {
        ProcessorConfig config = promotionPackingConfig(64);
        config.traceCache.pathAssociativity = true;
        return config;
    }
    if (name == "no-friendly") {
        // Baseline minus the Friendly et al. techniques.
        ProcessorConfig config = baselineConfig();
        config.partialMatching = false;
        config.inactiveIssue = false;
        return config;
    }
    ADD_FAILURE() << "unknown config " << name;
    return baselineConfig();
}

class SuiteSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(SuiteSweep, RunsWithSaneMetrics)
{
    const auto &[bench, config_name] = GetParam();
    workload::Program program =
        workload::generateProgram(workload::findProfile(bench));
    Processor proc(configByName(config_name), program);
    // The run itself enforces the oracle invariant at every retire.
    const SimResult r = proc.run(kTestInsts);

    EXPECT_GE(r.instructions, kTestInsts);
    EXPECT_GT(r.ipc, 0.2);
    EXPECT_LE(r.ipc, 16.0);
    EXPECT_GT(r.effectiveFetchRate, 2.0);
    EXPECT_LE(r.effectiveFetchRate, 16.0);
    EXPECT_GE(r.condMispredictRate, 0.0);
    EXPECT_LT(r.condMispredictRate, 0.5);
    EXPECT_GT(r.condBranches, kTestInsts / 40);

    std::uint64_t cycle_sum = 0;
    for (unsigned c = 0;
         c < static_cast<unsigned>(CycleCategory::NumCategories); ++c)
        cycle_sum += r.cycleCat[c];
    EXPECT_EQ(cycle_sum, proc.accounting().totalCycles());

    if (config_name != "icache") {
        EXPECT_GT(r.tcLookups, 0u);
        ASSERT_NE(proc.fillUnit(), nullptr);
        EXPECT_GT(proc.fillUnit()->segmentsBuilt(), 0u);
    }
    if (config_name == "promotion" || config_name == "promo-pack") {
        EXPECT_GT(r.promotedRetired, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllConfigs, SuiteSweep,
    ::testing::Combine(::testing::ValuesIn(benchmarkNames()),
                       ::testing::Values("icache", "baseline",
                                         "promotion", "packing",
                                         "promo-pack", "speculative",
                                         "path-assoc", "no-friendly")),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, std::string>> &param_info) {
        std::string name = std::get<0>(param_info.param) + "_" +
                           std::get<1>(param_info.param);
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

TEST(SimDeterminism, IdenticalRunsIdenticalResults)
{
    workload::Program program =
        workload::generateProgram(workload::findProfile("compress"));
    Processor a(promotionPackingConfig(), program);
    Processor b(promotionPackingConfig(), program);
    const SimResult ra = a.run(40000);
    const SimResult rb = b.run(40000);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.condMispredicts, rb.condMispredicts);
    EXPECT_EQ(ra.promotedFaults, rb.promotedFaults);
    EXPECT_EQ(ra.tcHits, rb.tcHits);
}

TEST(SimTrends, TraceCacheBeatsICacheOnFetchRate)
{
    // The paper's core premise, checked on three representative
    // benchmarks at test scale.
    for (const char *bench : {"compress", "m88ksim", "tex"}) {
        workload::Program program =
            workload::generateProgram(workload::findProfile(bench));
        Processor icache(icacheConfig(), program);
        Processor baseline(baselineConfig(), program);
        const double icache_rate =
            icache.run(kTestInsts).effectiveFetchRate;
        const double baseline_rate =
            baseline.run(kTestInsts).effectiveFetchRate;
        EXPECT_GT(baseline_rate, icache_rate * 1.3) << bench;
    }
}

TEST(SimTrends, BothTechniquesBeatBaselineFetchRate)
{
    for (const char *bench : {"compress", "tex"}) {
        workload::Program program =
            workload::generateProgram(workload::findProfile(bench));
        Processor baseline(baselineConfig(), program);
        Processor both(promotionPackingConfig(), program);
        const double base_rate =
            baseline.run(150000).effectiveFetchRate;
        const double both_rate = both.run(150000).effectiveFetchRate;
        EXPECT_GT(both_rate, base_rate * 1.04) << bench;
    }
}

TEST(SimTrends, PromotionReducesPredictionsPerFetch)
{
    workload::Program program =
        workload::generateProgram(workload::findProfile("vortex"));
    Processor baseline(baselineConfig(), program);
    Processor promo(promotionConfig(64), program);
    const SimResult rb = baseline.run(kTestInsts);
    const SimResult rp = promo.run(kTestInsts);
    // Paper Table 3: promotion shifts fetches into the 0-or-1
    // prediction class.
    EXPECT_GT(rp.fetchesNeeding01, rb.fetchesNeeding01 + 0.05);
    EXPECT_LT(rp.fetchesNeeding3, rb.fetchesNeeding3);
}

} // namespace
} // namespace tcsim::sim

namespace tcsim::sim
{
namespace
{

/**
 * Fuzz-style coverage: randomized generator profiles, each run under
 * the most complex configuration. The architectural oracle inside the
 * processor asserts pc/value/direction exactness at every retire, so
 * simply completing is a strong correctness statement.
 */
class RandomProfileFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProfileFuzz, OracleExactUnderPromoPack)
{
    Rng rng(0xF022 + GetParam());
    workload::BenchmarkProfile profile;
    profile.name = "fuzz-" + std::to_string(GetParam());
    profile.seed = rng.next();
    profile.numFunctions = 6 + static_cast<unsigned>(rng.below(60));
    profile.avgStatementsPerFunction = 4 + rng.uniform() * 12;
    profile.avgBlockSize = 1.5 + rng.uniform() * 5;
    profile.maxLoopDepth = 1 + static_cast<unsigned>(rng.below(3));
    profile.loopProb = 0.1 + rng.uniform() * 0.3;
    profile.ifProb = 0.2 + rng.uniform() * 0.3;
    profile.callProb = rng.uniform() * 0.35;
    profile.switchProb = rng.uniform() * 0.04;
    profile.trapProb = rng.uniform() * 0.002;
    profile.avgTripCount = 4 + rng.uniform() * 60;
    profile.highTripFrac = rng.uniform() * 0.3;
    profile.fracNeverTaken = rng.uniform() * 0.4;
    profile.fracStronglyBiased = rng.uniform() * 0.35;
    profile.fracModeratelyBiased = rng.uniform() * 0.25;
    profile.loadFrac = 0.05 + rng.uniform() * 0.3;
    profile.storeFrac = rng.uniform() * 0.2;
    profile.dataWorkingSetKB = 8 << rng.below(5);
    profile.randomAccessFrac = rng.uniform() * 0.5;

    workload::Program program = workload::generateProgram(profile);

    ProcessorConfig config = promotionPackingConfig(
        8 + static_cast<std::uint32_t>(rng.below(120)));
    if (rng.chance(0.3))
        config.disambiguation = Disambiguation::Speculative;
    else if (rng.chance(0.3))
        config.disambiguation = Disambiguation::Perfect;
    if (rng.chance(0.25))
        config.traceCache.pathAssociativity = true;
    if (rng.chance(0.2))
        config.partialMatching = false;
    if (rng.chance(0.2))
        config.inactiveIssue = false;

    Processor proc(config, program);
    const SimResult r = proc.run(40000);
    EXPECT_GE(r.instructions, 40000u);
    EXPECT_GT(r.ipc, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProfileFuzz,
                         ::testing::Range(0, 24));

} // namespace
} // namespace tcsim::sim
