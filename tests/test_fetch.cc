/**
 * @file
 * Tests for the fetch engine: icache fetch-block termination, split
 * lines, trace-cache hits with partial matching and inactive issue,
 * promoted branches and fault overrides, RAS and indirect targets.
 */

#include <gtest/gtest.h>

#include <memory>

#include "fetch/fetch_engine.h"
#include "memory/hierarchy.h"
#include "workload/builder.h"

namespace tcsim::fetch
{
namespace
{

using isa::Opcode;
using workload::Label;
using workload::ProgramBuilder;

/** Everything needed to drive a FetchEngine by hand. */
struct Rig
{
    explicit Rig(workload::Program prog, bool use_tc = true)
        : program(std::move(prog))
    {
        traceCache = std::make_unique<trace::TraceCache>(
            trace::TraceCacheParams{64, 4});
        mbp = std::make_unique<bpred::TreeMbp>(1024);
        hybrid = std::make_unique<bpred::HybridPredictor>();
        FetchEngineParams params;
        params.useTraceCache = use_tc;
        engine = std::make_unique<FetchEngine>(
            params, program, use_tc ? traceCache.get() : nullptr,
            hierarchy.icache(), use_tc ? mbp.get() : nullptr,
            use_tc ? nullptr : hybrid.get(), state);
    }

    FetchBatch &
    fetch(Addr pc)
    {
        engine->fetchCycle(pc, batch);
        return batch;
    }

    /** Fetch, absorbing icache-miss stalls. */
    FetchBatch &
    fetchWarm(Addr pc)
    {
        engine->fetchCycle(pc, batch);
        if (batch.icacheStall > 0)
            engine->fetchCycle(pc, batch);
        return batch;
    }

    workload::Program program;
    memory::Hierarchy hierarchy;
    std::unique_ptr<trace::TraceCache> traceCache;
    std::unique_ptr<bpred::TreeMbp> mbp;
    std::unique_ptr<bpred::HybridPredictor> hybrid;
    FrontEndState state;
    std::unique_ptr<FetchEngine> engine;
    FetchBatch batch;
};

workload::Program
straightLineProgram(unsigned alu_count, Opcode terminator = Opcode::Halt)
{
    ProgramBuilder b("t");
    for (unsigned i = 0; i < alu_count; ++i)
        b.add(10, 11, 12);
    if (terminator == Opcode::Ret)
        b.ret();
    else if (terminator == Opcode::Jr)
        b.jr(5);
    else
        b.halt();
    return b.build();
}

// ----------------------------------------------------------------------
// ICache path.
// ----------------------------------------------------------------------

TEST(FetchICache, MissStallsThenDelivers)
{
    Rig rig(straightLineProgram(4), false);
    FetchBatch &cold = rig.fetch(workload::kCodeBase);
    EXPECT_GT(cold.icacheStall, 0u);
    EXPECT_TRUE(cold.insts.empty());
    FetchBatch &warm = rig.fetch(workload::kCodeBase);
    EXPECT_EQ(warm.icacheStall, 0u);
    EXPECT_FALSE(warm.insts.empty());
    EXPECT_EQ(warm.source, FetchSource::ICache);
}

TEST(FetchICache, BlockEndsAtControl)
{
    ProgramBuilder b("t");
    b.add(10, 11, 12);
    b.add(10, 11, 12);
    Label target = b.newLabel();
    b.beq(0, 0, target); // always taken
    b.add(13, 11, 12);   // not fetched: after control
    b.bind(target);
    b.halt();
    Rig rig(b.build(), false);
    FetchBatch &batch = rig.fetchWarm(workload::kCodeBase);
    EXPECT_EQ(batch.insts.size(), 3u);
    EXPECT_TRUE(batch.insts.back().endsBlock);
    EXPECT_EQ(batch.predictionsUsed, 1u);
}

TEST(FetchICache, FullWidthIsMaxSixteen)
{
    Rig rig(straightLineProgram(40), false);
    rig.fetchWarm(workload::kCodeBase); // fills line 1
    // Line 2 not resident: fetch stops at the boundary.
    FetchBatch &batch = rig.fetch(workload::kCodeBase);
    EXPECT_EQ(batch.insts.size(), 16u);
    EXPECT_EQ(batch.nextFetchPc, workload::kCodeBase + 16 * 4);
}

TEST(FetchICache, SplitLineBoundaryTerminatesOnMiss)
{
    Rig rig(straightLineProgram(40), false);
    // Fetch mid-line: [base+8*4 .. ) crosses into the next 64B line.
    const Addr pc = workload::kCodeBase + 8 * 4;
    rig.fetchWarm(workload::kCodeBase); // line 1 resident
    FetchBatch &batch = rig.fetch(pc);
    // Only the 8 instructions to the line boundary are supplied.
    EXPECT_EQ(batch.insts.size(), 8u);
}

TEST(FetchICache, SplitLineCrossesWhenResident)
{
    Rig rig(straightLineProgram(40), false);
    rig.fetchWarm(workload::kCodeBase);
    rig.fetchWarm(workload::kCodeBase + 64); // line 2 resident too
    FetchBatch &batch = rig.fetch(workload::kCodeBase + 8 * 4);
    EXPECT_EQ(batch.insts.size(), 16u);
}

TEST(FetchICache, CallPushesRasAndRedirects)
{
    ProgramBuilder b("t");
    Label fn = b.newLabel();
    b.call(fn);
    b.halt();
    b.bind(fn);
    b.ret();
    Rig rig(b.build(), false);
    FetchBatch &batch = rig.fetchWarm(workload::kCodeBase);
    EXPECT_EQ(batch.insts.size(), 1u);
    EXPECT_EQ(batch.nextFetchPc, workload::kCodeBase + 8);
    EXPECT_EQ(rig.state.ras.depth(), 1u);

    // Fetch the return: pops the RAS back to the call site + 4.
    FetchBatch &ret_batch = rig.fetchWarm(batch.nextFetchPc);
    EXPECT_EQ(ret_batch.nextFetchPc, workload::kCodeBase + 4);
    EXPECT_EQ(rig.state.ras.depth(), 0u);
}

TEST(FetchICache, IndirectUsesLastTarget)
{
    Rig rig(straightLineProgram(2, Opcode::Jr), false);
    const Addr jr_pc = workload::kCodeBase + 2 * 4;
    FetchBatch &cold = rig.fetchWarm(workload::kCodeBase);
    // Never-seen indirect: falls through (a guaranteed misfetch).
    EXPECT_EQ(cold.nextFetchPc, jr_pc + 4);
    rig.state.indirect.update(jr_pc, 0x4000);
    FetchBatch &warm = rig.fetch(workload::kCodeBase);
    EXPECT_EQ(warm.nextFetchPc, 0x4000u);
}

TEST(FetchICache, SerializeStopsBatch)
{
    ProgramBuilder b("t");
    b.add(10, 11, 12);
    b.trap();
    b.add(10, 11, 12);
    b.halt();
    Rig rig(b.build(), false);
    FetchBatch &batch = rig.fetchWarm(workload::kCodeBase);
    EXPECT_TRUE(batch.sawSerialize);
    EXPECT_EQ(batch.insts.size(), 2u);
}

TEST(FetchICache, HistoryUpdatedSpeculatively)
{
    ProgramBuilder b("t");
    Label t = b.newLabel();
    b.beq(0, 0, t);
    b.bind(t);
    b.halt();
    Rig rig(b.build(), false);
    rig.state.history.restore(0x1);
    rig.fetchWarm(workload::kCodeBase);
    // One outcome shifted in: value is 0b10 or 0b11.
    EXPECT_GE(rig.state.history.value(), 0x2u);
    EXPECT_LE(rig.state.history.value(), 0x3u);
}

// ----------------------------------------------------------------------
// Trace-cache path.
// ----------------------------------------------------------------------

/** Build a 3-block segment with the given embedded directions. */
trace::TraceSegment
makeSegment(Addr start, std::initializer_list<bool> dirs,
            unsigned payload = 2)
{
    trace::TraceSegment seg;
    seg.startAddr = start;
    Addr pc = start;
    for (const bool dir : dirs) {
        for (unsigned i = 0; i < payload; ++i) {
            trace::TraceInst ti;
            ti.inst = isa::Instruction{Opcode::Add, 10, 11, 12, 0};
            ti.pc = pc;
            pc += 4;
            seg.insts.push_back(ti);
        }
        trace::TraceInst br;
        br.inst = isa::Instruction{Opcode::Bne, 0, 4, 0, 16};
        br.pc = pc;
        br.endsBlock = true;
        br.builtTaken = dir;
        // The segment's embedded path: on taken, the next block's pcs
        // continue at the branch target.
        pc = dir ? isa::directTarget(br.inst, pc) : pc + 4;
        seg.insts.push_back(br);
        ++seg.numBlockBranches;
    }
    seg.reason = trace::FillReason::MaxBranches;
    return seg;
}

/** Train the rig's MBP so position @p pos predicts @p dir. */
void
train(Rig &rig, Addr fetch_addr, unsigned pos, unsigned path, bool dir)
{
    for (int i = 0; i < 8; ++i) {
        bpred::MbpCtx ctx;
        ctx.fetchAddr = fetch_addr;
        ctx.history = rig.state.history.value();
        ctx.position = static_cast<std::uint8_t>(pos);
        ctx.path = static_cast<std::uint8_t>(path);
        rig.mbp->update(ctx, dir);
    }
}

TEST(FetchTrace, FullMatchDeliversWholeSegment)
{
    Rig rig(straightLineProgram(4));
    const Addr start = 0x20000;
    rig.traceCache->insert(makeSegment(start, {false, false, false}));
    train(rig, start, 0, 0, false);
    train(rig, start, 1, 0, false);
    train(rig, start, 2, 0, false);

    FetchBatch &batch = rig.fetch(start);
    EXPECT_EQ(batch.source, FetchSource::TraceCache);
    EXPECT_EQ(batch.insts.size(), 9u);
    EXPECT_EQ(batch.activeCount, 9u);
    EXPECT_FALSE(batch.partialMatch);
    EXPECT_EQ(batch.predictionsUsed, 3u);
    // Fall-through continuation after the last not-taken branch.
    EXPECT_EQ(batch.nextFetchPc, batch.insts.back().pc + 4);
}

TEST(FetchTrace, PartialMatchInactivatesSuffix)
{
    Rig rig(straightLineProgram(4));
    const Addr start = 0x20000;
    rig.traceCache->insert(makeSegment(start, {false, false, false}));
    train(rig, start, 0, 0, true); // diverge at the first branch

    FetchBatch &batch = rig.fetch(start);
    EXPECT_TRUE(batch.partialMatch);
    EXPECT_EQ(batch.insts.size(), 9u); // inactive issue: all delivered
    EXPECT_EQ(batch.activeCount, 3u);
    EXPECT_TRUE(batch.insts[2].active);
    EXPECT_FALSE(batch.insts[3].active);
    // Redirect along the predicted (taken) path.
    EXPECT_EQ(batch.nextFetchPc,
              isa::directTarget(batch.insts[2].inst, batch.insts[2].pc));
}

TEST(FetchTrace, MissFallsBackToICache)
{
    Rig rig(straightLineProgram(6));
    FetchBatch &batch = rig.fetchWarm(workload::kCodeBase);
    EXPECT_EQ(batch.source, FetchSource::ICache);
}

TEST(FetchTrace, PromotedBranchConsumesNoPrediction)
{
    Rig rig(straightLineProgram(4));
    const Addr start = 0x20000;
    trace::TraceSegment seg;
    seg.startAddr = start;
    trace::TraceInst alu;
    alu.inst = isa::Instruction{Opcode::Add, 10, 11, 12, 0};
    alu.pc = start;
    seg.insts.push_back(alu);
    trace::TraceInst promoted;
    promoted.inst = isa::Instruction{Opcode::Bne, 0, 4, 0, 1};
    promoted.pc = start + 4;
    promoted.promoted = true;
    promoted.promotedDir = true;
    promoted.builtTaken = true;
    seg.insts.push_back(promoted);
    trace::TraceInst tail;
    tail.inst = isa::Instruction{Opcode::Add, 10, 11, 12, 0};
    tail.pc = isa::directTarget(promoted.inst, promoted.pc);
    seg.insts.push_back(tail);
    rig.traceCache->insert(std::move(seg));

    FetchBatch &batch = rig.fetch(start);
    EXPECT_EQ(batch.predictionsUsed, 0u);
    EXPECT_EQ(batch.activeCount, 3u);
    EXPECT_TRUE(batch.insts[1].promoted);
    EXPECT_TRUE(batch.insts[1].followedDir);
}

TEST(FetchTrace, OverrideFlipsPromotedBranchOnce)
{
    Rig rig(straightLineProgram(4));
    const Addr start = 0x20000;
    trace::TraceSegment seg;
    seg.startAddr = start;
    trace::TraceInst promoted;
    promoted.inst = isa::Instruction{Opcode::Bne, 0, 4, 0, 4};
    promoted.pc = start;
    promoted.promoted = true;
    promoted.promotedDir = true;
    promoted.builtTaken = true;
    seg.insts.push_back(promoted);
    trace::TraceInst tail;
    tail.inst = isa::Instruction{Opcode::Add, 10, 11, 12, 0};
    tail.pc = isa::directTarget(promoted.inst, promoted.pc);
    seg.insts.push_back(tail);
    rig.traceCache->insert(std::move(seg));

    rig.state.overrides[start] = FrontEndState::Override{0, false};
    FetchBatch &batch = rig.fetch(start);
    // The override flips the branch off the embedded path: suffix
    // inactive, redirect to the fall-through.
    EXPECT_FALSE(batch.insts[0].followedDir);
    EXPECT_FALSE(batch.insts[1].active);
    EXPECT_EQ(batch.nextFetchPc, start + 4);
    EXPECT_TRUE(rig.state.overrides.empty());

    // Second fetch: override consumed, back to the static direction.
    FetchBatch &again = rig.fetch(start);
    EXPECT_TRUE(again.insts[0].followedDir);
}

TEST(FetchTrace, OverrideSkipPassesEarlierInstance)
{
    Rig rig(straightLineProgram(4));
    const Addr start = 0x20000;
    trace::TraceSegment seg;
    seg.startAddr = start;
    trace::TraceInst promoted;
    promoted.inst = isa::Instruction{Opcode::Bne, 0, 4, 0, 4};
    promoted.pc = start;
    promoted.promoted = true;
    promoted.promotedDir = true;
    promoted.builtTaken = true;
    seg.insts.push_back(promoted);
    rig.traceCache->insert(std::move(seg));

    rig.state.overrides[start] = FrontEndState::Override{1, false};
    FetchBatch &first = rig.fetch(start);
    EXPECT_TRUE(first.insts[0].followedDir) << "skip must pass instance";
    FetchBatch &second = rig.fetch(start);
    EXPECT_FALSE(second.insts[0].followedDir);
}

TEST(FetchTrace, SegmentEndingInReturnUsesRas)
{
    Rig rig(straightLineProgram(4));
    const Addr start = 0x20000;
    trace::TraceSegment seg;
    seg.startAddr = start;
    trace::TraceInst ret;
    ret.inst = isa::Instruction{Opcode::Ret, 0, isa::kRegRa, 0, 0};
    ret.pc = start;
    seg.insts.push_back(ret);
    seg.reason = trace::FillReason::RetIndirTrap;
    rig.traceCache->insert(std::move(seg));

    rig.state.ras.push(0xabc0);
    FetchBatch &batch = rig.fetch(start);
    EXPECT_EQ(batch.nextFetchPc, 0xabc0u);
    EXPECT_EQ(rig.state.ras.depth(), 0u);
}

TEST(FetchTrace, InactiveCallDoesNotTouchRas)
{
    Rig rig(straightLineProgram(4));
    const Addr start = 0x20000;
    trace::TraceSegment seg;
    seg.startAddr = start;
    trace::TraceInst br;
    br.inst = isa::Instruction{Opcode::Bne, 0, 4, 0, 16};
    br.pc = start;
    br.endsBlock = true;
    br.builtTaken = false;
    seg.insts.push_back(br);
    trace::TraceInst call;
    call.inst = isa::Instruction{Opcode::Call, isa::kRegRa, 0, 0, 32};
    call.pc = start + 4;
    seg.insts.push_back(call);
    seg.numBlockBranches = 1;
    rig.traceCache->insert(std::move(seg));

    train(rig, start, 0, 0, true); // diverge: the call is inactive
    FetchBatch &batch = rig.fetch(start);
    ASSERT_EQ(batch.insts.size(), 2u);
    EXPECT_FALSE(batch.insts[1].active);
    EXPECT_EQ(rig.state.ras.depth(), 0u);
}

} // namespace
} // namespace tcsim::fetch
// Extensions: issue-policy flags and path associativity.
// (Appended to the anonymous namespace's enclosing namespace scope.)

namespace tcsim::fetch
{
namespace
{

/** A rig with configurable fetch-engine flags. */
struct FlagRig
{
    FlagRig(workload::Program prog, bool partial, bool inactive,
            bool path_assoc = false)
        : program(std::move(prog))
    {
        trace::TraceCacheParams tc_params{64, 4, path_assoc};
        traceCache = std::make_unique<trace::TraceCache>(tc_params);
        mbp = std::make_unique<bpred::TreeMbp>(1024);
        FetchEngineParams params;
        params.useTraceCache = true;
        params.partialMatching = partial;
        params.inactiveIssue = inactive;
        params.pathAssociativity = path_assoc;
        engine = std::make_unique<FetchEngine>(
            params, program, traceCache.get(), hierarchy.icache(),
            mbp.get(), nullptr, state);
    }

    FetchBatch &
    fetch(Addr pc)
    {
        engine->fetchCycle(pc, batch);
        return batch;
    }

    workload::Program program;
    memory::Hierarchy hierarchy;
    std::unique_ptr<trace::TraceCache> traceCache;
    std::unique_ptr<bpred::TreeMbp> mbp;
    FrontEndState state;
    std::unique_ptr<FetchEngine> engine;
    FetchBatch batch;
};

void
trainFlag(FlagRig &rig, Addr fetch_addr, unsigned pos, unsigned path,
          bool dir)
{
    for (int i = 0; i < 8; ++i) {
        bpred::MbpCtx ctx;
        ctx.fetchAddr = fetch_addr;
        ctx.history = rig.state.history.value();
        ctx.position = static_cast<std::uint8_t>(pos);
        ctx.path = static_cast<std::uint8_t>(path);
        rig.mbp->update(ctx, dir);
    }
}

TEST(FetchFlags, NoInactiveIssueTruncatesAtDivergence)
{
    FlagRig rig(straightLineProgram(4), true, false);
    const Addr start = 0x20000;
    rig.traceCache->insert(makeSegment(start, {false, false, false}));
    trainFlag(rig, start, 0, 0, true); // diverge at the first branch

    FetchBatch &batch = rig.fetch(start);
    EXPECT_EQ(batch.source, FetchSource::TraceCache);
    EXPECT_EQ(batch.insts.size(), 3u); // active prefix only
    EXPECT_EQ(batch.activeCount, 3u);
    for (const FetchedInst &fi : batch.insts)
        EXPECT_TRUE(fi.active);
}

TEST(FetchFlags, NoPartialMatchTreatsDivergenceAsMiss)
{
    FlagRig rig(straightLineProgram(20), false, true);
    const Addr start = workload::kCodeBase;
    rig.traceCache->insert(makeSegment(start, {false, false, false}));
    trainFlag(rig, start, 0, 0, true); // predictor disagrees

    // First fetch warms the icache (the segment is rejected).
    FetchBatch &cold = rig.fetch(start);
    EXPECT_GT(cold.icacheStall, 0u);
    FetchBatch &batch = rig.fetch(start);
    EXPECT_EQ(batch.source, FetchSource::ICache);
}

TEST(FetchFlags, PartialMatchAcceptsFullAgreement)
{
    FlagRig rig(straightLineProgram(20), false, true);
    const Addr start = 0x20000;
    rig.traceCache->insert(makeSegment(start, {false, false, false}));
    trainFlag(rig, start, 0, 0, false);
    trainFlag(rig, start, 1, 0, false);
    trainFlag(rig, start, 2, 0, false);

    FetchBatch &batch = rig.fetch(start);
    EXPECT_EQ(batch.source, FetchSource::TraceCache);
    EXPECT_EQ(batch.insts.size(), 9u);
}

TEST(FetchFlags, PathAssociativitySelectsMatchingPath)
{
    FlagRig rig(straightLineProgram(4), true, true, true);
    const Addr start = 0x20000;
    // Two same-start segments with opposite first-branch paths.
    rig.traceCache->insert(makeSegment(start, {false, false, false}));
    rig.traceCache->insert(makeSegment(start, {true, true, true}));
    trainFlag(rig, start, 0, 0, true);
    trainFlag(rig, start, 1, 1, true);
    trainFlag(rig, start, 2, 3, true);

    FetchBatch &batch = rig.fetch(start);
    EXPECT_EQ(batch.source, FetchSource::TraceCache);
    EXPECT_FALSE(batch.partialMatch);
    EXPECT_EQ(batch.activeCount, batch.insts.size());
    // The taken-path segment was selected.
    EXPECT_TRUE(batch.insts[2].embeddedTaken);
}

} // namespace
} // namespace tcsim::fetch
