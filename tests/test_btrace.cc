/**
 * @file
 * tcsim-btrace-v1 format and record→replay round-trip tests: a trace
 * recorded from the oracle must drive the front end to a bit-identical
 * outcome stream (outcomeHash) and predictor-visible history
 * (finalHistory) on both a legacy and a server-class workload, and the
 * reader must reject truncated or corrupted files with a specific
 * reason rather than serving bad records.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/config.h"
#include "sim/processor.h"
#include "workload/btrace.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace tcsim::workload
{
namespace
{

constexpr std::uint64_t kTraceInsts = 40000;

std::string
tracePath(const std::string &tag)
{
    return testing::TempDir() + "/tcsim_btrace_test_" + tag + ".btrace";
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Record @p insts instructions of @p benchmark to @p path. */
sim::Processor::ControlFlowResult
recordBenchmark(const std::string &benchmark, const std::string &path,
                std::uint64_t insts)
{
    const BenchmarkProfile &profile = findProfile(benchmark);
    const Program program = generateProgram(profile);
    BtraceWriter writer(path, kGeneratorVersion,
                        profileFingerprint(profile), program.entry());
    sim::Processor recorder(sim::icacheConfig(), program);
    return recorder.recordTrace(writer, insts);
}

class BtraceRoundTrip : public testing::TestWithParam<const char *>
{
};

// The core bit-identity contract: replaying a recorded trace through a
// fresh front end reproduces every counter, the FNV outcome hash over
// each control transfer, and the final global history register — on a
// legacy profile and on a server-class profile (deep call chains,
// indirect dispatch, large code footprint).
TEST_P(BtraceRoundTrip, RecordReplayBitIdentical)
{
    const std::string benchmark = GetParam();
    const std::string path = tracePath(benchmark);
    const auto recorded = recordBenchmark(benchmark, path, kTraceInsts);
    ASSERT_GT(recorded.records, 0u);
    EXPECT_EQ(recorded.instructions, kTraceInsts);

    BtraceReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, &error)) << error;
    EXPECT_EQ(reader.header().formatVersion, kBtraceFormatVersion);
    EXPECT_EQ(reader.header().generatorVersion, kGeneratorVersion);
    EXPECT_EQ(reader.header().profileFingerprint,
              profileFingerprint(findProfile(benchmark)));
    EXPECT_EQ(reader.header().instCount, recorded.instructions);
    EXPECT_EQ(reader.recordCount(), recorded.records);

    const Program program = generateProgram(findProfile(benchmark));
    sim::Processor replayer(sim::icacheConfig(), program);
    const auto replayed = replayer.replayTrace(reader);

    EXPECT_EQ(replayed.outcomeHash, recorded.outcomeHash);
    EXPECT_EQ(replayed.finalHistory, recorded.finalHistory);
    EXPECT_EQ(replayed.instructions, recorded.instructions);
    EXPECT_EQ(replayed.records, recorded.records);
    EXPECT_EQ(replayed.condBranches, recorded.condBranches);
    EXPECT_EQ(replayed.condMispredicts, recorded.condMispredicts);
    EXPECT_EQ(replayed.returns, recorded.returns);
    EXPECT_EQ(replayed.returnMispredicts, recorded.returnMispredicts);
    EXPECT_EQ(replayed.indirectJumps, recorded.indirectJumps);
    EXPECT_EQ(replayed.indirectMispredicts, recorded.indirectMispredicts);
    EXPECT_EQ(replayed.traps, recorded.traps);
    EXPECT_EQ(replayed.icacheAccesses, recorded.icacheAccesses);
    EXPECT_EQ(replayed.icacheMisses, recorded.icacheMisses);
    EXPECT_EQ(replayed.tcLookups, recorded.tcLookups);
    EXPECT_EQ(replayed.tcHits, recorded.tcHits);
    EXPECT_EQ(replayed.halted, recorded.halted);

    std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(LegacyAndServer, BtraceRoundTrip,
                         testing::Values("compress", "server-oltp"),
                         [](const auto &param_info) {
                             std::string name = param_info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// openBytes() must validate an in-memory image (the artifact-cache
// path) exactly like open() validates a file, and serve identical
// records from the adopted buffer.
TEST(Btrace, OpenBytesMatchesOpen)
{
    const std::string path = tracePath("openbytes");
    recordBenchmark("compress", path, kTraceInsts);
    const std::string bytes = readFileBytes(path);

    BtraceReader from_file;
    BtraceReader from_bytes;
    std::string error;
    ASSERT_TRUE(from_file.open(path, &error)) << error;
    ASSERT_TRUE(from_bytes.openBytes(bytes, &error)) << error;
    ASSERT_EQ(from_file.recordCount(), from_bytes.recordCount());
    EXPECT_EQ(from_file.header().profileFingerprint,
              from_bytes.header().profileFingerprint);
    for (std::uint64_t i : {std::uint64_t{0},
                            from_file.recordCount() / 2,
                            from_file.recordCount() - 1}) {
        const BtraceRecord a = from_file.record(i);
        const BtraceRecord b = from_bytes.record(i);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.target, b.target);
        EXPECT_EQ(a.cls, b.cls);
        EXPECT_EQ(a.taken, b.taken);
    }
    std::filesystem::remove(path);
}

// Corruption rejection: every class of damage must be refused with the
// right reason, both from a file and from in-memory bytes.
class BtraceCorruption : public testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = tracePath("corrupt");
        recordBenchmark("compress", path_, 20000);
        good_ = readFileBytes(path_);
        ASSERT_GT(good_.size(), kBtraceHeaderBytes + kBtraceRecordBytes);
    }

    void TearDown() override { std::filesystem::remove(path_); }

    /** Expect both open paths to reject @p bytes citing @p reason. */
    void expectRejected(const std::string &bytes,
                        const std::string &reason)
    {
        writeFileBytes(path_, bytes);
        BtraceReader from_file;
        std::string error;
        EXPECT_FALSE(from_file.open(path_, &error));
        EXPECT_EQ(error, reason);
        BtraceReader from_bytes;
        error.clear();
        EXPECT_FALSE(from_bytes.openBytes(bytes, &error));
        EXPECT_EQ(error, reason);
    }

    std::string path_;
    std::string good_;
};

TEST_F(BtraceCorruption, TruncatedBelowHeader)
{
    expectRejected(good_.substr(0, kBtraceHeaderBytes - 1),
                   "file shorter than the btrace header");
}

TEST_F(BtraceCorruption, TruncatedMidRecord)
{
    expectRejected(good_.substr(0, good_.size() - 5),
                   "btrace size does not match its record count");
}

TEST_F(BtraceCorruption, BadMagic)
{
    std::string bytes = good_;
    bytes[0] ^= 0x40;
    expectRejected(bytes, "bad btrace magic");
}

TEST_F(BtraceCorruption, HeaderBitFlip)
{
    std::string bytes = good_;
    bytes[24] ^= 0x01; // entry pc — magic intact, checksum not
    expectRejected(bytes, "btrace header checksum mismatch");
}

TEST_F(BtraceCorruption, RecordBitFlip)
{
    std::string bytes = good_;
    bytes[kBtraceHeaderBytes + kBtraceRecordBytes + 3] ^= 0x01;
    expectRejected(bytes, "btrace record checksum mismatch");
}

// A writer that never reaches close() leaves a zeroed header on disk:
// a crash mid-record must not yield a readable trace.
TEST_F(BtraceCorruption, UnclosedWriterIsRejected)
{
    std::string zeroed = good_;
    for (std::size_t i = 0; i < kBtraceHeaderBytes; ++i)
        zeroed[i] = '\0';
    expectRejected(zeroed, "bad btrace magic");
}

} // namespace
} // namespace tcsim::workload
