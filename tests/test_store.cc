/**
 * @file
 * Tests for the pluggable fragment/artifact store: name validation,
 * atomic first-wins put semantics, listing, the HTTP object-store
 * shim (auth, dedup, manifest), openStore() spec parsing, and the
 * artifact cache's corruption rejection over a remote backend.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/artifact_cache.h"
#include "bench/store.h"
#include "bench/store_server.h"
#include "common/json.h"
#include "obs/http.h"

namespace
{

using namespace tcsim;
using namespace tcsim::bench;

TEST(StoreName, ValidatesCharsetAndShape)
{
    EXPECT_TRUE(isValidStoreName("0123abcd00ff1122.json"));
    EXPECT_TRUE(isValidStoreName("prog/deadbeef.art"));
    EXPECT_TRUE(isValidStoreName("heartbeat-w1.json"));
    EXPECT_FALSE(isValidStoreName(""));
    EXPECT_FALSE(isValidStoreName("../escape.json"));
    EXPECT_FALSE(isValidStoreName("a/../b"));
    EXPECT_FALSE(isValidStoreName("a/b/c"));   // at most one separator
    EXPECT_FALSE(isValidStoreName("/rooted")); // empty first segment
    EXPECT_FALSE(isValidStoreName("trailing/"));
    EXPECT_FALSE(isValidStoreName("."));
    EXPECT_FALSE(isValidStoreName("sp ace"));
    EXPECT_FALSE(isValidStoreName("quo\"te"));
}

class LocalStoreTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = testing::TempDir() + "/tcsim_store_test";
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TEST_F(LocalStoreTest, PutGetExistsRemoveRoundTrip)
{
    LocalDirStore store(dir_);
    const std::string payload("bytes\0with nul", 14);
    EXPECT_FALSE(store.exists("a.json"));
    EXPECT_FALSE(store.get("a.json").has_value());
    ASSERT_TRUE(store.put("a.json", payload));
    EXPECT_TRUE(store.exists("a.json"));
    EXPECT_EQ(store.get("a.json"), payload);
    EXPECT_TRUE(store.remove("a.json"));
    EXPECT_FALSE(store.exists("a.json"));
    EXPECT_TRUE(store.remove("a.json")); // already gone is success
}

TEST_F(LocalStoreTest, PutIsFirstWinsUnlessOverwrite)
{
    LocalDirStore store(dir_);
    ASSERT_TRUE(store.put("a.json", "first"));
    // The straggler-duplicate dedup point: a second put succeeds
    // without touching the object.
    EXPECT_TRUE(store.put("a.json", "second"));
    EXPECT_EQ(store.get("a.json"), "first");
    EXPECT_TRUE(store.put("a.json", "third", /*overwrite=*/true));
    EXPECT_EQ(store.get("a.json"), "third");
}

TEST_F(LocalStoreTest, RejectsTraversalNames)
{
    LocalDirStore store(dir_);
    EXPECT_FALSE(store.put("../escape.json", "x"));
    EXPECT_FALSE(store.get("../escape.json").has_value());
    EXPECT_FALSE(store.exists("../escape.json"));
    EXPECT_FALSE(
        std::filesystem::exists(testing::TempDir() + "/escape.json"));
}

TEST_F(LocalStoreTest, ListIsPrefixFilteredAndSorted)
{
    LocalDirStore store(dir_);
    ASSERT_TRUE(store.put("bb.json", "2"));
    ASSERT_TRUE(store.put("aa.json", "1"));
    ASSERT_TRUE(store.put("heartbeat-w1.json", "hb"));
    const auto all = store.list("");
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].name, "aa.json");
    EXPECT_EQ(all[1].name, "bb.json");
    EXPECT_EQ(all[2].name, "heartbeat-w1.json");
    EXPECT_EQ(all[0].size, 1u);
    const auto hb = store.list("heartbeat-");
    ASSERT_EQ(hb.size(), 1u);
    EXPECT_EQ(hb[0].name, "heartbeat-w1.json");
}

TEST_F(LocalStoreTest, SubdirObjectsWork)
{
    LocalDirStore store(dir_);
    ASSERT_TRUE(store.put("prog/cafe.art", "payload"));
    EXPECT_EQ(store.get("prog/cafe.art"), "payload");
    const auto listed = store.list("prog/");
    ASSERT_EQ(listed.size(), 1u);
    EXPECT_EQ(listed[0].name, "prog/cafe.art");
}

TEST(OpenStore, ParsesSpecs)
{
    const std::string dir = testing::TempDir() + "/tcsim_openstore";
    auto local = openStore(dir);
    ASSERT_NE(local, nullptr);
    EXPECT_NE(dynamic_cast<LocalDirStore *>(local.get()), nullptr);
    EXPECT_EQ(local->describe(), dir);
    EXPECT_EQ(openStore("http://"), nullptr);
    EXPECT_EQ(openStore("http://host:notaport"), nullptr);
    std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------------------
// The HTTP shim, exercised over a real loopback socket.
// ----------------------------------------------------------------------

class HttpStoreTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = testing::TempDir() + "/tcsim_http_store_test";
        std::filesystem::remove_all(dir_);
        backing_ = std::make_unique<LocalDirStore>(dir_);
        server_ = std::make_unique<StoreServer>(*backing_);
        ASSERT_TRUE(server_->start("127.0.0.1", 0, "secret"));
    }
    void TearDown() override
    {
        server_->stop();
        std::filesystem::remove_all(dir_);
    }

    HttpStore client(const std::string &token = "secret")
    {
        return HttpStore("127.0.0.1", server_->port(), token);
    }

    std::string dir_;
    std::unique_ptr<LocalDirStore> backing_;
    std::unique_ptr<StoreServer> server_;
};

TEST_F(HttpStoreTest, RoundTripsThroughTheWire)
{
    HttpStore store = client();
    const std::string payload("binary\0payload", 14);
    EXPECT_FALSE(store.exists("frag.json"));
    ASSERT_TRUE(store.put("frag.json", payload));
    EXPECT_TRUE(store.exists("frag.json"));
    EXPECT_EQ(store.get("frag.json"), payload);
    // The backing directory holds exactly the uploaded bytes — the
    // byte-identical merge guarantee does not depend on transport.
    EXPECT_EQ(backing_->get("frag.json"), payload);
    EXPECT_TRUE(store.remove("frag.json"));
    EXPECT_FALSE(backing_->exists("frag.json"));
}

TEST_F(HttpStoreTest, FirstWinsDedupOverTheWire)
{
    HttpStore store = client();
    ASSERT_TRUE(store.put("frag.json", "first"));
    EXPECT_TRUE(store.put("frag.json", "second"));
    EXPECT_EQ(store.get("frag.json"), "first");
    EXPECT_TRUE(store.put("hb.json", "h1", /*overwrite=*/true));
    EXPECT_TRUE(store.put("hb.json", "h2", /*overwrite=*/true));
    EXPECT_EQ(store.get("hb.json"), "h2");
}

TEST_F(HttpStoreTest, RejectsMissingOrWrongToken)
{
    HttpStore wrong = client("not-the-secret");
    EXPECT_FALSE(wrong.put("frag.json", "x"));
    EXPECT_FALSE(wrong.get("frag.json").has_value());
    EXPECT_FALSE(wrong.exists("frag.json"));
    EXPECT_TRUE(wrong.list("").empty());
    // Nothing reached the backing store.
    EXPECT_TRUE(backing_->list("").empty());

    const auto result = obs::httpRequest("127.0.0.1", server_->port(),
                                         "GET", "/manifest", "");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, 401);
}

TEST_F(HttpStoreTest, ManifestListsObjects)
{
    HttpStore store = client();
    ASSERT_TRUE(store.put("aa.json", "1"));
    ASSERT_TRUE(store.put("bb.json", "22"));
    const auto listed = store.list("");
    ASSERT_EQ(listed.size(), 2u);
    EXPECT_EQ(listed[0].name, "aa.json");
    EXPECT_EQ(listed[0].size, 1u);
    EXPECT_EQ(listed[1].name, "bb.json");
    EXPECT_EQ(listed[1].size, 2u);

    std::string error;
    const auto doc = json::parse(server_->renderManifest(""), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    EXPECT_EQ(doc->getString("schema"), "tcsim-store-manifest-v1");
    const json::Value *objects = doc->find("objects");
    ASSERT_NE(objects, nullptr);
    ASSERT_EQ(objects->items().size(), 2u);
    EXPECT_EQ(objects->items()[0].getString("name"), "aa.json");
}

TEST_F(HttpStoreTest, ServerRejectsInvalidNames)
{
    for (const char *path : {"/obj/..%2Fescape", "/obj/../escape"}) {
        const auto result = obs::httpRequest(
            "127.0.0.1", server_->port(), "PUT", path, "secret", "x");
        ASSERT_TRUE(result.has_value()) << path;
        EXPECT_NE(result->status, 200) << path;
        EXPECT_NE(result->status, 201) << path;
    }
    EXPECT_TRUE(backing_->list("").empty());
}

TEST_F(HttpStoreTest, ArtifactCacheRejectsCorruptRemoteObject)
{
    // A corrupted object served by the remote backend must be treated
    // as a miss, rejected, and evicted — same contract as local files.
    {
        ArtifactCache cache(std::make_unique<HttpStore>(
            "127.0.0.1", server_->port(), "secret"));
        ASSERT_TRUE(cache.store("prog", "key-a", "payload"));
        EXPECT_EQ(cache.load("prog", "key-a"), "payload");
    }
    const std::string name = ArtifactCache::objectName("prog", "key-a");
    std::string bytes = *backing_->get(name);
    bytes[bytes.size() - 3] ^= 0x40; // flip a payload bit
    ASSERT_TRUE(backing_->put(name, bytes, /*overwrite=*/true));

    ArtifactCache cache(std::make_unique<HttpStore>(
        "127.0.0.1", server_->port(), "secret"));
    EXPECT_FALSE(cache.load("prog", "key-a").has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_FALSE(backing_->exists(name)) << "corrupt object not evicted";
}

} // namespace
