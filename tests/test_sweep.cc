/**
 * @file
 * Tests for the sharded sweep engine: stable unit enumeration and
 * content hashing, the byte-identity of a sharded merge against the
 * single-process document, and the merge layer's classification of
 * missing, stale and corrupt fragments.
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/sweep.h"
#include "obs/heartbeat.h"
#include "sim/config.h"

namespace
{

using namespace tcsim;
using namespace tcsim::bench;

SweepOptions
smallMatrix()
{
    SweepOptions options;
    options.benchmarks = {"compress", "li"};
    options.configs = {sim::baselineConfig(), sim::promotionConfig(64)};
    options.insts = 8000;
    return options;
}

TEST(SweepUnits, EnumerationIsStableAndConfigMajor)
{
    const SweepOptions options = smallMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(options);
    ASSERT_EQ(units.size(), 4u);
    // Config-major, matching sweepMatrix: all benchmarks of config 0
    // first, so fragments line up with the exhibit tables.
    EXPECT_EQ(units[0].benchmark, "compress");
    EXPECT_EQ(units[1].benchmark, "li");
    EXPECT_EQ(units[0].config.name, units[1].config.name);
    EXPECT_EQ(units[2].benchmark, "compress");
    EXPECT_NE(units[0].config.name, units[2].config.name);
    for (std::size_t i = 0; i < units.size(); ++i) {
        EXPECT_EQ(units[i].index, i);
        EXPECT_EQ(units[i].id, units[i].benchmark + "@" +
                                   units[i].config.name + "@8000");
        EXPECT_EQ(units[i].hash.size(), 16u);
    }
    // A second enumeration reproduces ids and hashes exactly.
    const std::vector<WorkUnit> again = enumerateUnits(options);
    ASSERT_EQ(again.size(), units.size());
    for (std::size_t i = 0; i < units.size(); ++i) {
        EXPECT_EQ(again[i].id, units[i].id);
        EXPECT_EQ(again[i].hash, units[i].hash);
    }
    EXPECT_EQ(matrixHash(again), matrixHash(units));
}

TEST(SweepUnits, HashTracksEveryResultInput)
{
    const SweepOptions base = smallMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(base);

    SweepOptions warmed = base;
    warmed.warmup = 5000;
    const std::vector<WorkUnit> warmed_units = enumerateUnits(warmed);
    ASSERT_EQ(warmed_units.size(), units.size());
    for (std::size_t i = 0; i < units.size(); ++i)
        EXPECT_NE(warmed_units[i].hash, units[i].hash);

    SweepOptions retuned = base;
    retuned.configs[0].fetchWidth += 1; // any behavioral config change
    const std::vector<WorkUnit> retuned_units = enumerateUnits(retuned);
    EXPECT_NE(retuned_units[0].hash, units[0].hash);
    // Units of the untouched config keep their hashes.
    EXPECT_EQ(retuned_units[2].hash, units[2].hash);
}

TEST(SweepUnits, ConfigByNameResolvesPresets)
{
    for (const char *name :
         {"icache", "baseline", "promotion-t64", "promotion-t16",
          "packing-atomic", "packing-cost-regulated",
          "promo-pack-n-regulated", "promo-pack-unregulated"}) {
        const auto config = configByName(name);
        ASSERT_TRUE(config.has_value()) << name;
        EXPECT_EQ(config->name, name);
    }
    EXPECT_FALSE(configByName("nonsense").has_value());
    EXPECT_FALSE(configByName("promotion-t").has_value());
    EXPECT_FALSE(configByName("packing-bogus").has_value());
}

SweepOptions
sampledMatrix()
{
    SweepOptions options = smallMatrix();
    options.insts = 40000;
    options.warmup = 2000;
    options.sampled.enabled = true;
    options.sampled.interval = 10000;
    options.sampled.maxK = 2;
    return options;
}

TEST(SweepUnits, SampledDimensionInIdsAndHashes)
{
    const std::vector<WorkUnit> sampled =
        enumerateUnits(sampledMatrix());
    ASSERT_EQ(sampled.size(), 4u);
    EXPECT_EQ(sampled[0].id,
              "compress@baseline@40000@sampled-i10000-k2-w2000");

    SweepOptions full = sampledMatrix();
    full.sampled = SampledParams{};
    const std::vector<WorkUnit> full_units = enumerateUnits(full);
    for (std::size_t i = 0; i < sampled.size(); ++i)
        EXPECT_NE(sampled[i].hash, full_units[i].hash);

    // Every sampled parameter feeds the hash.
    SweepOptions finer = sampledMatrix();
    finer.sampled.interval = 5000;
    EXPECT_NE(enumerateUnits(finer)[0].hash, sampled[0].hash);
    SweepOptions wider = sampledMatrix();
    wider.sampled.maxK = 3;
    EXPECT_NE(enumerateUnits(wider)[0].hash, sampled[0].hash);
}

TEST(SweepSampled, DegenerateParametersReproduceFullIntegers)
{
    // One interval, one cluster, no warm-up: the sampled path must
    // collapse to exactly the full run's integers.
    SweepOptions degenerate = smallMatrix();
    degenerate.insts = 20000;
    degenerate.sampled.enabled = true;
    degenerate.sampled.interval = 20000;
    degenerate.sampled.maxK = 1;
    const WorkUnit sampled_unit = enumerateUnits(degenerate)[0];

    SweepOptions full = degenerate;
    full.sampled = SampledParams{};
    const WorkUnit full_unit = enumerateUnits(full)[0];

    const ResultIntegers s = executeUnitIntegers(sampled_unit);
    const ResultIntegers f = executeUnitIntegers(full_unit);
    EXPECT_EQ(s.instructions, f.instructions);
    EXPECT_EQ(s.cycles, f.cycles);
    EXPECT_EQ(s.condBranches, f.condBranches);
    EXPECT_EQ(s.condMispredicts, f.condMispredicts);
    EXPECT_EQ(s.usefulFetches, f.usefulFetches);
    EXPECT_EQ(s.fetchedInsts, f.fetchedInsts);
    EXPECT_EQ(s.tcLookups, f.tcLookups);
    EXPECT_EQ(s.tcHits, f.tcHits);
    EXPECT_EQ(s.icacheMisses, f.icacheMisses);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(s.fetchesNeedingPreds[i], f.fetchesNeedingPreds[i]);
}

TEST(SweepSampled, WeightedEstimateTracksFullRun)
{
    // The sampled weighted estimate must land near the full run even
    // at test scale (tight calibration happens at 4M in the bench
    // suite; this guards gross regressions in weighting or warm-up).
    for (const WorkUnit &unit : enumerateUnits(sampledMatrix())) {
        WorkUnit full_unit = unit;
        full_unit.sampled = SampledParams{};
        const ResultIntegers s = executeUnitIntegers(unit);
        const ResultIntegers f = executeUnitIntegers(full_unit);
        const double sampled_ipc =
            static_cast<double>(s.instructions) /
            static_cast<double>(s.cycles);
        const double full_ipc = static_cast<double>(f.instructions) /
                                static_cast<double>(f.cycles);
        EXPECT_NEAR(sampled_ipc / full_ipc, 1.0, 0.15) << unit.id;
    }
}

class SweepMergeTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = testing::TempDir() + "/tcsim_sweep_test_fragments";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TEST_F(SweepMergeTest, TwoShardMergeIsByteIdentical)
{
    // The tentpole guarantee: fragments written by independent
    // "shards" merge into exactly the bytes the single-process path
    // renders — because both funnel through the one canonical
    // renderer on the same deterministic integers.
    const SweepOptions options = smallMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(options);

    std::vector<ResultIntegers> integers;
    for (const WorkUnit &unit : units)
        integers.push_back(integersOf(executeUnit(unit)));
    const std::string single = renderResultsDoc(units, integers);

    // Shard round-robin, as `tcsim_sweep --shard i/2` does.
    for (std::size_t i = 0; i < units.size(); ++i) {
        UnitTiming timing;
        timing.wallSeconds = 0.125 * static_cast<double>(i + 1);
        ASSERT_TRUE(writeFragment(dir_, units[i], integers[i], timing));
    }

    MergeReport report;
    const auto merged = mergeFragments(options, dir_, report);
    ASSERT_TRUE(merged.has_value());
    EXPECT_TRUE(report.complete());
    EXPECT_TRUE(report.stale.empty());
    EXPECT_TRUE(report.duplicates.empty());
    EXPECT_EQ(*merged, single); // byte-identical
}

TEST_F(SweepMergeTest, SampledShardedMergeIsByteIdentical)
{
    // The byte-identity contract extends to sampled units: fragments
    // carry the same deterministic integers the single-process
    // renderer consumes, sampled dimension included.
    const SweepOptions options = sampledMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(options);

    std::vector<ResultIntegers> integers;
    for (const WorkUnit &unit : units)
        integers.push_back(executeUnitIntegers(unit));
    const std::string single = renderResultsDoc(units, integers);
    EXPECT_NE(single.find("\"sampled_interval\""), std::string::npos);

    for (std::size_t i = 0; i < units.size(); ++i)
        ASSERT_TRUE(writeFragment(dir_, units[i], integers[i],
                                  UnitTiming{}));
    MergeReport report;
    const auto merged = mergeFragments(options, dir_, report);
    ASSERT_TRUE(merged.has_value());
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(*merged, single);
}

TEST_F(SweepMergeTest, ServerProfileShardedMergeIsByteIdentical)
{
    // Server-class profiles must hold the same determinism contract
    // as the legacy suite: any shard layout (TCSIM_JOBS, --shard i/n,
    // pulled workers) reproduces the single-process document byte for
    // byte. Each unit is executed twice — as two independent workers
    // would — and both the integers and the merged bytes must agree.
    SweepOptions options;
    options.benchmarks = {"server-oltp", "server-web"};
    options.configs = {sim::baselineConfig(), sim::promotionConfig(64)};
    options.insts = 8000;
    const std::vector<WorkUnit> units = enumerateUnits(options);
    ASSERT_EQ(units.size(), 4u);

    std::vector<ResultIntegers> integers;
    for (const WorkUnit &unit : units) {
        const ResultIntegers first = integersOf(executeUnit(unit));
        const ResultIntegers second = integersOf(executeUnit(unit));
        EXPECT_EQ(first.instructions, second.instructions) << unit.id;
        EXPECT_EQ(first.cycles, second.cycles) << unit.id;
        EXPECT_EQ(first.condMispredicts, second.condMispredicts)
            << unit.id;
        EXPECT_EQ(first.tcHits, second.tcHits) << unit.id;
        EXPECT_EQ(first.icacheMisses, second.icacheMisses) << unit.id;
        integers.push_back(first);
    }
    const std::string single = renderResultsDoc(units, integers);

    // Fragments land in reverse order — worker completion order must
    // not matter to the merged bytes.
    for (std::size_t i = units.size(); i-- > 0;)
        ASSERT_TRUE(writeFragment(dir_, units[i], integers[i],
                                  UnitTiming{}));
    MergeReport report;
    const auto merged = mergeFragments(options, dir_, report);
    ASSERT_TRUE(merged.has_value());
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(*merged, single);
}

TEST_F(SweepMergeTest, ReplayUnitsShardAndMergeByteIdentical)
{
    // The @replay dimension rides the same fragment pipeline: replay
    // units are deterministic (the btrace artifact is recorded from
    // the same oracle every time), their ids and hashes carry the
    // replay marker, and a sharded merge reproduces the
    // single-process document.
    SweepOptions options;
    options.benchmarks = {"compress", "server-oltp"};
    options.configs = {sim::baselineConfig()};
    options.insts = 8000;
    options.replay = true;
    const std::vector<WorkUnit> units = enumerateUnits(options);
    ASSERT_EQ(units.size(), 2u);
    EXPECT_EQ(units[0].id, "compress@baseline@8000@replay");

    SweepOptions cycle_options = options;
    cycle_options.replay = false;
    const std::vector<WorkUnit> cycle = enumerateUnits(cycle_options);
    for (std::size_t i = 0; i < units.size(); ++i)
        EXPECT_NE(units[i].hash, cycle[i].hash);

    std::vector<ResultIntegers> integers;
    for (const WorkUnit &unit : units) {
        const ResultIntegers first = executeUnitIntegers(unit);
        const ResultIntegers second = executeUnitIntegers(unit);
        EXPECT_EQ(first.instructions, second.instructions) << unit.id;
        EXPECT_EQ(first.condMispredicts, second.condMispredicts)
            << unit.id;
        EXPECT_EQ(first.tcLookups, second.tcLookups) << unit.id;
        EXPECT_EQ(first.tcHits, second.tcHits) << unit.id;
        EXPECT_EQ(first.icacheMisses, second.icacheMisses) << unit.id;
        // Replay drives the front end only: no pipeline cycles.
        EXPECT_EQ(first.cycles, 0u) << unit.id;
        EXPECT_EQ(first.instructions, options.insts) << unit.id;
        integers.push_back(first);
    }
    const std::string single = renderResultsDoc(units, integers);

    for (std::size_t i = 0; i < units.size(); ++i)
        ASSERT_TRUE(writeFragment(dir_, units[i], integers[i],
                                  UnitTiming{}));
    MergeReport report;
    const auto merged = mergeFragments(options, dir_, report);
    ASSERT_TRUE(merged.has_value());
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(*merged, single);
}

TEST_F(SweepMergeTest, ExecuteUnitIsDeterministic)
{
    const std::vector<WorkUnit> units = enumerateUnits(smallMatrix());
    const ResultIntegers a = integersOf(executeUnit(units[0]));
    const ResultIntegers b = integersOf(executeUnit(units[0]));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.tcHits, b.tcHits);
    EXPECT_GE(a.instructions, 8000u);
}

TEST_F(SweepMergeTest, MissingFragmentsReported)
{
    const SweepOptions options = smallMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(options);
    const ResultIntegers integers = integersOf(executeUnit(units[0]));
    ASSERT_TRUE(writeFragment(dir_, units[0], integers, UnitTiming{}));

    MergeReport report;
    EXPECT_FALSE(mergeFragments(options, dir_, report).has_value());
    EXPECT_FALSE(report.complete());
    ASSERT_EQ(report.missing.size(), units.size() - 1);
    EXPECT_EQ(report.missing[0], units[1].id);
}

TEST_F(SweepMergeTest, StaleFragmentsSkippedButMergeCompletes)
{
    // A fragment from yesterday's matrix (different warm-up, so a
    // different content hash) must be ignored, not merged.
    SweepOptions options = smallMatrix();
    SweepOptions stale_options = options;
    stale_options.warmup = 2000;
    const WorkUnit stale_unit = enumerateUnits(stale_options)[0];
    ASSERT_TRUE(writeFragment(dir_, stale_unit,
                              integersOf(executeUnit(stale_unit)),
                              UnitTiming{}));

    const std::vector<WorkUnit> units = enumerateUnits(options);
    for (const WorkUnit &unit : units)
        ASSERT_TRUE(writeFragment(dir_, unit,
                                  integersOf(executeUnit(unit)),
                                  UnitTiming{}));

    MergeReport report;
    const auto merged = mergeFragments(options, dir_, report);
    ASSERT_TRUE(merged.has_value());
    ASSERT_EQ(report.stale.size(), 1u);
    EXPECT_EQ(report.stale[0], fragmentPath(dir_, stale_unit));
}

TEST_F(SweepMergeTest, CorruptFragmentsBlockTheMerge)
{
    const SweepOptions options = smallMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(options);
    for (const WorkUnit &unit : units)
        ASSERT_TRUE(writeFragment(dir_, unit,
                                  integersOf(executeUnit(unit)),
                                  UnitTiming{}));

    // Garbage that still ends in .json: classified corrupt, and a
    // corrupt file makes the merge refuse rather than guess.
    {
        std::ofstream out(dir_ + "/garbage.json");
        out << "{ not json";
    }
    MergeReport report;
    EXPECT_FALSE(mergeFragments(options, dir_, report).has_value());
    ASSERT_EQ(report.corrupt.size(), 1u);
    EXPECT_EQ(report.corrupt[0], dir_ + "/garbage.json");
    EXPECT_TRUE(report.missing.empty());
}

TEST_F(SweepMergeTest, HeartbeatsInvisibleToMergeVisibleToScan)
{
    // A monitored sweep leaves heartbeat files (and possibly a torn
    // in-flight one) in the fragments directory. The merge must treat
    // them as if they were not there — same bytes, nothing classified
    // corrupt — while scanFarm picks up both the workers and the
    // completed units.
    const SweepOptions options = smallMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(options);

    std::vector<ResultIntegers> integers;
    for (const WorkUnit &unit : units)
        integers.push_back(integersOf(executeUnit(unit)));
    const std::string single = renderResultsDoc(units, integers);

    for (std::size_t i = 0; i < units.size(); ++i) {
        UnitTiming timing;
        timing.wallSeconds = 0.25;
        ASSERT_TRUE(writeFragment(dir_, units[i], integers[i], timing));
    }
    obs::Heartbeat hb;
    hb.worker = "shard0";
    hb.phase = "run";
    hb.unitId = units[0].id;
    hb.unitsTotal = units.size();
    ASSERT_TRUE(obs::writeHeartbeat(dir_, hb));
    {
        // A torn heartbeat mid-write: garbage to every reader, but
        // still not the merge's problem.
        std::ofstream out(dir_ + "/heartbeat-shard1.json");
        out << "{\n  \"schema\": \"tcsim-heart";
    }

    MergeReport report;
    const auto merged = mergeFragments(options, dir_, report);
    ASSERT_TRUE(merged.has_value());
    EXPECT_TRUE(report.complete());
    EXPECT_TRUE(report.corrupt.empty());
    EXPECT_TRUE(report.stale.empty());
    EXPECT_EQ(*merged, single);

    const FarmScan scan = scanFarm(options, dir_);
    EXPECT_EQ(scan.unitsTotal, units.size());
    EXPECT_EQ(scan.completed.size(), units.size());
    // Only the intact heartbeat parses; the torn one is skipped.
    ASSERT_EQ(scan.workers.size(), 1u);
    EXPECT_EQ(scan.workers[0].hb.worker, "shard0");
    EXPECT_GE(scan.workers[0].ageSeconds, 0.0);
    for (const CompletedUnit &unit : scan.completed)
        EXPECT_DOUBLE_EQ(unit.wallSeconds, 0.25);
}

TEST_F(SweepMergeTest, RenamedFragmentIsCorruptNotTrusted)
{
    // The filename stem must match the embedded hash; a renamed file
    // cannot claim another unit's slot.
    const SweepOptions options = smallMatrix();
    const std::vector<WorkUnit> units = enumerateUnits(options);
    ASSERT_TRUE(writeFragment(dir_, units[0],
                              integersOf(executeUnit(units[0])),
                              UnitTiming{}));
    std::filesystem::rename(fragmentPath(dir_, units[0]),
                            fragmentPath(dir_, units[1]));

    MergeReport report;
    EXPECT_FALSE(mergeFragments(options, dir_, report).has_value());
    ASSERT_EQ(report.corrupt.size(), 1u);
    EXPECT_EQ(report.corrupt[0], fragmentPath(dir_, units[1]));
}

} // namespace
