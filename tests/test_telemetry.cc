/**
 * @file
 * Tests for the sweep-farm telemetry layer: heartbeat render/parse
 * round-trips (including torn and truncated files), the monitor's
 * aggregation math (stale detection, straggler medians, EWMA
 * throughput), the perf-regression gate's edge cases, and the status
 * server's bearer-token authentication.
 */

#include <array>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/farm.h"
#include "obs/heartbeat.h"
#include "obs/regress.h"
#include "obs/status_server.h"

namespace
{

using namespace tcsim;
using namespace tcsim::obs;

Heartbeat
sampleHeartbeat()
{
    Heartbeat hb;
    hb.worker = "shard3";
    hb.pid = 4242;
    hb.seq = 17;
    hb.phase = "run";
    hb.unitId = "compress@baseline@8000";
    hb.unitHash = "0123456789abcdef";
    hb.startMono = 100.0;
    hb.nowMono = 161.5;
    hb.unitStartMono = 160.25;
    hb.unitsDone = 5;
    hb.unitsTotal = 9;
    hb.retiredInsts = 40000;
    hb.cacheHits = 7;
    hb.cacheMisses = 2;
    return hb;
}

TEST(Heartbeat, RenderParseRoundTrip)
{
    const Heartbeat hb = sampleHeartbeat();
    const std::optional<Heartbeat> back = parseHeartbeat(renderHeartbeat(hb));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->worker, hb.worker);
    EXPECT_EQ(back->pid, hb.pid);
    EXPECT_EQ(back->seq, hb.seq);
    EXPECT_EQ(back->phase, hb.phase);
    EXPECT_EQ(back->unitId, hb.unitId);
    EXPECT_EQ(back->unitHash, hb.unitHash);
    EXPECT_DOUBLE_EQ(back->startMono, hb.startMono);
    EXPECT_DOUBLE_EQ(back->nowMono, hb.nowMono);
    EXPECT_DOUBLE_EQ(back->unitStartMono, hb.unitStartMono);
    EXPECT_EQ(back->unitsDone, hb.unitsDone);
    EXPECT_EQ(back->unitsTotal, hb.unitsTotal);
    EXPECT_EQ(back->retiredInsts, hb.retiredInsts);
    EXPECT_EQ(back->cacheHits, hb.cacheHits);
    EXPECT_EQ(back->cacheMisses, hb.cacheMisses);
}

TEST(Heartbeat, TruncatedAndTornDocumentsAreRejected)
{
    const std::string doc = renderHeartbeat(sampleHeartbeat());
    // Every proper prefix is a torn read and must parse to nullopt,
    // never to a half-filled heartbeat.
    for (std::size_t cut : {std::size_t{0}, doc.size() / 4,
                            doc.size() / 2, doc.size() - 2}) {
        EXPECT_FALSE(parseHeartbeat(doc.substr(0, cut)).has_value())
            << "prefix of " << cut << " bytes parsed";
    }
    EXPECT_FALSE(parseHeartbeat("").has_value());
    EXPECT_FALSE(parseHeartbeat("{}").has_value());
    EXPECT_FALSE(parseHeartbeat("not json at all").has_value());
    // A complete document of the wrong schema is not a heartbeat.
    EXPECT_FALSE(
        parseHeartbeat("{\"schema\": \"tcsim-bench-fragment-v1\"}")
            .has_value());
}

TEST(Heartbeat, MissingFieldRejected)
{
    std::string doc = renderHeartbeat(sampleHeartbeat());
    const std::size_t at = doc.find("\"retired_insts\"");
    ASSERT_NE(at, std::string::npos);
    const std::size_t line_end = doc.find('\n', at);
    doc.erase(at, line_end - at + 1);
    EXPECT_FALSE(parseHeartbeat(doc).has_value());
}

TEST(Heartbeat, FilenameConventions)
{
    EXPECT_EQ(heartbeatPath("/tmp/frags", "shard0"),
              "/tmp/frags/heartbeat-shard0.json");
    EXPECT_TRUE(isHeartbeatFilename("heartbeat-shard0.json"));
    EXPECT_TRUE(isHeartbeatFilename("heartbeat-pid1234.json"));
    EXPECT_FALSE(isHeartbeatFilename("0123456789abcdef.json"));
    EXPECT_FALSE(isHeartbeatFilename("results.json"));
}

TEST(Heartbeat, EmitterWritesLifecyclePhases)
{
    const std::string dir =
        testing::TempDir() + "/tcsim_heartbeat_emitter";
    std::filesystem::remove_all(dir);
    const std::string path = heartbeatPath(dir, "w0");
    const auto read_phase = [&]() {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buffer;
        buffer << in.rdbuf();
        const std::optional<Heartbeat> hb = parseHeartbeat(buffer.str());
        return hb ? hb->phase : std::string("<unparsed>");
    };
    {
        // Long interval: every observed write below comes from a
        // state transition, not the background timer.
        HeartbeatEmitter emitter(dir, "w0", 60.0, 3);
        ASSERT_TRUE(emitter.enabled());
        EXPECT_EQ(read_phase(), "idle");
        emitter.beginUnit("compress@baseline@8000", "0123456789abcdef");
        EXPECT_EQ(read_phase(), "run");
        emitter.completeUnit(8000, 1, 0);
        EXPECT_EQ(read_phase(), "idle");
        emitter.finish();
        EXPECT_EQ(read_phase(), "done");
    }
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::optional<Heartbeat> hb = parseHeartbeat(buffer.str());
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(hb->unitsDone, 1u);
    EXPECT_EQ(hb->unitsTotal, 3u);
    EXPECT_EQ(hb->retiredInsts, 8000u);
    EXPECT_EQ(hb->cacheHits, 1u);
    std::filesystem::remove_all(dir);
}

TEST(Heartbeat, DisabledEmitterIsInert)
{
    HeartbeatEmitter no_dir("", "w0", 1.0, 3);
    EXPECT_FALSE(no_dir.enabled());
    no_dir.beginUnit("a", "b");
    no_dir.completeUnit(1, 0, 0);
    no_dir.finish();
    HeartbeatEmitter no_interval(testing::TempDir(), "w0", 0.0, 3);
    EXPECT_FALSE(no_interval.enabled());
}

TEST(Farm, MedianOfOddEvenEmpty)
{
    EXPECT_DOUBLE_EQ(medianOf({}), 0.0);
    EXPECT_DOUBLE_EQ(medianOf({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(medianOf({5.0, 1.0, 3.0}), 3.0);
    EXPECT_DOUBLE_EQ(medianOf({4.0, 1.0, 3.0, 2.0}), 2.5);
}

WorkerObservation
runningWorker(const std::string &name, double unit_elapsed,
              double age = 0.5)
{
    WorkerObservation observed;
    observed.hb.worker = name;
    observed.hb.phase = "run";
    observed.hb.unitId = name + "-unit";
    observed.hb.startMono = 0.0;
    observed.hb.unitStartMono = 100.0;
    observed.hb.nowMono = 100.0 + unit_elapsed;
    observed.hb.unitsTotal = 4;
    observed.ageSeconds = age;
    return observed;
}

TEST(Farm, StaleDetectionSparesDoneWorkers)
{
    FarmParams params;
    params.staleAfterSeconds = 15.0;
    std::vector<WorkerObservation> workers;
    workers.push_back(runningWorker("live", 1.0, /*age=*/2.0));
    workers.push_back(runningWorker("wedged", 1.0, /*age=*/30.0));
    WorkerObservation done;
    done.hb.worker = "finished";
    done.hb.phase = "done";
    done.ageSeconds = 500.0; // done workers stop writing by design
    workers.push_back(done);

    const FarmStatus status =
        aggregateFarm(workers, {}, 8, 2, params, nullptr, 0.0);
    EXPECT_EQ(status.workersStale, 1u);
    EXPECT_FALSE(status.workers[0].stale);
    EXPECT_TRUE(status.workers[1].stale);
    EXPECT_FALSE(status.workers[2].stale);
    EXPECT_EQ(status.unitsRunning, 2u);
}

TEST(Farm, StragglerNeedsMedianFloorAndThreshold)
{
    FarmParams params;
    params.stragglerK = 4.0;
    params.minCompletedForMedian = 3;
    std::vector<WorkerObservation> workers;
    workers.push_back(runningWorker("slow", 10.0, /*age=*/0.0));

    // Two completed samples: below the floor, no flagging even though
    // the unit is 10x the median.
    FarmStatus status = aggregateFarm(workers, {1.0, 1.0}, 8, 2, params,
                                      nullptr, 0.0);
    EXPECT_DOUBLE_EQ(status.medianUnitSeconds, 0.0);
    EXPECT_TRUE(status.stragglers.empty());

    // Three samples with median 2.0: threshold 8.0, and the in-flight
    // elapsed (worker-reported time + heartbeat age) crosses it.
    status = aggregateFarm(workers, {1.0, 2.0, 3.0}, 8, 3, params,
                           nullptr, 0.0);
    EXPECT_DOUBLE_EQ(status.medianUnitSeconds, 2.0);
    EXPECT_DOUBLE_EQ(status.stragglerThresholdSeconds, 8.0);
    ASSERT_EQ(status.stragglers.size(), 1u);
    EXPECT_EQ(status.stragglers[0], "slow-unit");
    EXPECT_TRUE(status.workers[0].straggler);

    // At exactly 8s elapsed the unit is not yet a straggler; the age
    // pushing it past the threshold is what flags it.
    std::vector<WorkerObservation> edge;
    edge.push_back(runningWorker("edge", 8.0, /*age=*/0.0));
    status = aggregateFarm(edge, {1.0, 2.0, 3.0}, 8, 3, params, nullptr,
                           0.0);
    EXPECT_TRUE(status.stragglers.empty());
    edge[0].ageSeconds = 0.5;
    status = aggregateFarm(edge, {1.0, 2.0, 3.0}, 8, 3, params, nullptr,
                           0.0);
    EXPECT_EQ(status.stragglers.size(), 1u);
}

TEST(Farm, EwmaSmoothsRateAcrossPolls)
{
    FarmParams params;
    params.ewmaAlpha = 0.5;
    EwmaState ewma;
    // First poll seeds the state: no time base yet, rate 0.
    FarmStatus status =
        aggregateFarm({}, {}, 100, 0, params, &ewma, 10.0);
    EXPECT_DOUBLE_EQ(status.throughputUnitsPerSec, 0.0);
    EXPECT_DOUBLE_EQ(status.etaSeconds, -1.0);

    // 10 units in 10 seconds: first sample becomes the rate.
    status = aggregateFarm({}, {}, 100, 10, params, &ewma, 20.0);
    EXPECT_DOUBLE_EQ(status.throughputUnitsPerSec, 1.0);
    EXPECT_DOUBLE_EQ(status.etaSeconds, 90.0);

    // 30 more in 10 seconds: ewma = 0.5*3 + 0.5*1 = 2.
    status = aggregateFarm({}, {}, 100, 40, params, &ewma, 30.0);
    EXPECT_DOUBLE_EQ(status.throughputUnitsPerSec, 2.0);
    EXPECT_DOUBLE_EQ(status.etaSeconds, 30.0);

    // A backwards poll (monitor restart) reseeds instead of producing
    // a negative rate.
    status = aggregateFarm({}, {}, 100, 40, params, &ewma, 5.0);
    EXPECT_DOUBLE_EQ(status.throughputUnitsPerSec, 0.0);
}

TEST(Farm, SingleShotFallbackRateUsesWorkerUptime)
{
    // With no EWMA history (one-shot --status), the rate falls back
    // to units_done over the busiest worker's uptime.
    std::vector<WorkerObservation> workers;
    WorkerObservation worker = runningWorker("w", 1.0, /*age=*/1.0);
    worker.hb.startMono = 90.0; // uptime 11s + 1s age = 12s
    workers.push_back(worker);
    const FarmStatus status =
        aggregateFarm(workers, {}, 10, 6, FarmParams{}, nullptr, 0.0);
    EXPECT_DOUBLE_EQ(status.throughputUnitsPerSec, 0.5);
    EXPECT_DOUBLE_EQ(status.etaSeconds, 8.0);
}

TEST(Farm, StatusRendersAndCountsConsistently)
{
    std::vector<WorkerObservation> workers;
    workers.push_back(runningWorker("w0", 2.0));
    const FarmStatus status =
        aggregateFarm(workers, {1.0, 1.0, 1.0}, 4, 3, FarmParams{},
                      nullptr, 0.0);
    const std::string doc = renderFarmStatus(status, 1700000000);
    const std::optional<json::Value> parsed = json::parse(doc);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->getString("schema"), "tcsim-farm-status-v1");
    EXPECT_EQ(parsed->getUint64("units_total"), 4u);
    EXPECT_EQ(parsed->getUint64("units_done"), 3u);
    const json::Value *rendered_workers = parsed->find("workers");
    ASSERT_NE(rendered_workers, nullptr);
    ASSERT_EQ(rendered_workers->items().size(), 1u);
    EXPECT_EQ(rendered_workers->items()[0].getString("worker"), "w0");
    // The dashboard mentions every worker and the completion ratio.
    const std::string dashboard = renderFarmDashboard(status);
    EXPECT_NE(dashboard.find("w0"), std::string::npos);
    EXPECT_NE(dashboard.find("3/4"), std::string::npos);
}

// ---------------------------------------------------------------------
// Regression gate.
// ---------------------------------------------------------------------

std::string
resultsDoc(const std::vector<std::array<const char *, 2>> &units,
           double ipc, double fetch, double mispredict,
           int perturb_index = -1, double ipc_scale = 1.0)
{
    std::string out = "{\n  \"schema\": \"tcsim-bench-results-v1\",\n"
                      "  \"results\": [\n";
    for (std::size_t i = 0; i < units.size(); ++i) {
        const double unit_ipc =
            static_cast<int>(i) == perturb_index ? ipc * ipc_scale : ipc;
        out += std::string("    {\"benchmark\": \"") + units[i][0] +
               "\", \"config\": \"" + units[i][1] +
               "\", \"insts\": 8000, \"warmup\": 0, \"ipc\": " +
               std::to_string(unit_ipc) +
               ", \"effective_fetch_rate\": " + std::to_string(fetch) +
               ", \"cond_mispredict_rate\": " +
               std::to_string(mispredict) + "}";
        out += i + 1 < units.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
timingDoc(const std::vector<std::array<const char *, 2>> &units,
          const std::vector<double> &walls)
{
    std::string out = "{\n  \"schema\": \"tcsim-bench-timing-v1\",\n"
                      "  \"units\": [\n";
    for (std::size_t i = 0; i < units.size(); ++i) {
        out += std::string("    {\"id\": \"") + units[i][0] + "@" +
               units[i][1] + "@8000\", \"wall_seconds\": " +
               std::to_string(walls[i]) + "}";
        out += i + 1 < units.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

const std::vector<std::array<const char *, 2>> kUnits = {
    {{"compress", "baseline"}},
    {{"li", "baseline"}},
    {{"compress", "promotion-t64"}},
    {{"li", "promotion-t64"}},
};

TEST(Regress, SelfCompareIsCleanWithZeroVarianceBand)
{
    const std::string doc = resultsDoc(kUnits, 2.0, 10.0, 0.05);
    const std::string timing = timingDoc(kUnits, {1.0, 2.0, 3.0, 4.0});
    const std::optional<json::Value> results = json::parse(doc);
    const std::optional<json::Value> timing_doc = json::parse(timing);
    ASSERT_TRUE(results && timing_doc);

    RegressOptions options;
    std::string error;
    const std::optional<RegressionReport> report =
        compareResults(*results, *results, &*timing_doc, &*timing_doc,
                       options, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_FALSE(report->regressed);
    EXPECT_EQ(report->units.size(), kUnits.size());
    // Zero per-unit variance: the learned sigma is 0 and the wall
    // band degenerates to the plain threshold.
    EXPECT_DOUBLE_EQ(report->wallNoiseSigma, 0.0);
    EXPECT_DOUBLE_EQ(report->wallBand, options.wallThreshold);
    for (const UnitComparison &unit : report->units) {
        EXPECT_FALSE(unit.regressed);
        ASSERT_TRUE(unit.wall.has_value());
        EXPECT_DOUBLE_EQ(unit.wall->relDelta, 0.0);
    }
}

TEST(Regress, IpcLossFlaggedGainNot)
{
    const std::string base = resultsDoc(kUnits, 2.0, 10.0, 0.05);
    // Unit 1 loses 5% IPC; unit 2 gains 5%.
    std::string cur = resultsDoc(kUnits, 2.0, 10.0, 0.05, 1, 0.95);
    const std::size_t at = cur.find("2.000000");
    ASSERT_NE(at, std::string::npos);
    std::optional<json::Value> baseline = json::parse(base);
    {
        std::string gain = resultsDoc(kUnits, 2.0, 10.0, 0.05, 2, 1.05);
        // Splice unit 2's gained ipc into cur by re-rendering: easier
        // to just compare two separate documents below.
        std::optional<json::Value> current = json::parse(gain);
        ASSERT_TRUE(baseline && current);
        std::string error;
        const auto report =
            compareResults(*baseline, *current, nullptr, nullptr,
                           RegressOptions{}, &error);
        ASSERT_TRUE(report.has_value()) << error;
        EXPECT_FALSE(report->regressed) << "an IPC gain must not fail";
    }
    std::optional<json::Value> current = json::parse(cur);
    ASSERT_TRUE(baseline && current);
    std::string error;
    const auto report = compareResults(*baseline, *current, nullptr,
                                       nullptr, RegressOptions{}, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_TRUE(report->regressed);
    ASSERT_EQ(report->units.size(), kUnits.size());
    EXPECT_FALSE(report->units[0].regressed);
    EXPECT_TRUE(report->units[1].regressed);
    const MetricDelta &ipc = report->units[1].metrics[0];
    EXPECT_EQ(ipc.name, "ipc");
    EXPECT_TRUE(ipc.regressed);
    EXPECT_NEAR(ipc.relDelta, -0.05, 1e-9);
}

TEST(Regress, MispredictRateIsLowerIsBetter)
{
    const std::string base = resultsDoc(kUnits, 2.0, 10.0, 0.05);
    const std::string cur = resultsDoc(kUnits, 2.0, 10.0, 0.06);
    std::optional<json::Value> baseline = json::parse(base);
    std::optional<json::Value> current = json::parse(cur);
    ASSERT_TRUE(baseline && current);
    std::string error;
    // 0.05 -> 0.06 is a 20% relative increase in mispredicts: fails.
    auto report = compareResults(*baseline, *current, nullptr, nullptr,
                                 RegressOptions{}, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_TRUE(report->regressed);
    // The reverse direction (fewer mispredicts) passes.
    report = compareResults(*current, *baseline, nullptr, nullptr,
                            RegressOptions{}, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_FALSE(report->regressed);
}

TEST(Regress, MissingUnitsAreAsymmetric)
{
    const std::string base = resultsDoc(kUnits, 2.0, 10.0, 0.05);
    const std::vector<std::array<const char *, 2>> fewer(
        kUnits.begin(), kUnits.end() - 1);
    const std::string cur = resultsDoc(fewer, 2.0, 10.0, 0.05);
    std::optional<json::Value> baseline = json::parse(base);
    std::optional<json::Value> current = json::parse(cur);
    ASSERT_TRUE(baseline && current);
    std::string error;
    // Coverage loss (baseline unit missing from current) fails.
    auto report = compareResults(*baseline, *current, nullptr, nullptr,
                                 RegressOptions{}, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_TRUE(report->regressed);
    ASSERT_EQ(report->missingInCurrent.size(), 1u);
    EXPECT_EQ(report->missingInCurrent[0], "li@promotion-t64@8000");
    EXPECT_TRUE(report->missingInBaseline.empty());
    // New coverage (current unit with no baseline) passes.
    report = compareResults(*current, *baseline, nullptr, nullptr,
                            RegressOptions{}, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_FALSE(report->regressed);
    ASSERT_EQ(report->missingInBaseline.size(), 1u);
    EXPECT_TRUE(report->missingInCurrent.empty());
}

TEST(Regress, WallBandLearnsNoiseFromSpread)
{
    // Eight units whose wall-clock deltas spread widely: the learned
    // band must widen past the configured threshold and absorb a
    // shift that a fixed threshold would flag.
    std::vector<std::array<const char *, 2>> units;
    static const char *benches[] = {"a", "b", "c", "d",
                                    "e", "f", "g", "h"};
    for (const char *bench : benches)
        units.push_back({bench, "baseline"});
    const std::string base_doc = resultsDoc(units, 2.0, 10.0, 0.05);
    const std::string base_timing =
        timingDoc(units, {1, 1, 1, 1, 1, 1, 1, 1});
    // Deltas: -60%..+80% around the baseline — noisy host timing.
    const std::string cur_timing = timingDoc(
        units, {0.4, 1.8, 0.6, 1.6, 0.5, 1.5, 0.7, 1.3});
    std::optional<json::Value> results = json::parse(base_doc);
    std::optional<json::Value> tb = json::parse(base_timing);
    std::optional<json::Value> tc = json::parse(cur_timing);
    ASSERT_TRUE(results && tb && tc);
    RegressOptions options;
    options.wallThreshold = 0.20;
    options.noiseK = 3.0;
    std::string error;
    const auto report = compareResults(*results, *results, &*tb, &*tc,
                                       options, &error);
    ASSERT_TRUE(report.has_value()) << error;
    EXPECT_GT(report->wallNoiseSigma, 0.0);
    EXPECT_GT(report->wallBand, options.wallThreshold);
    EXPECT_FALSE(report->regressed)
        << "spread this wide must be classified as noise, band "
        << report->wallBand;
}

TEST(Regress, RobustSigmaEdgeCases)
{
    EXPECT_DOUBLE_EQ(robustSigma({}), 0.0);
    EXPECT_DOUBLE_EQ(robustSigma({0.5}), 0.0);
    EXPECT_DOUBLE_EQ(robustSigma({0.1, 0.1, 0.1}), 0.0);
    // MAD of {1,2,3,4,5} about median 3 is 1 -> sigma 1.4826.
    EXPECT_NEAR(robustSigma({1, 2, 3, 4, 5}), 1.4826, 1e-9);
}

TEST(Regress, ReportRendersAndReparses)
{
    const std::string base = resultsDoc(kUnits, 2.0, 10.0, 0.05);
    const std::string cur = resultsDoc(kUnits, 2.0, 10.0, 0.05, 0, 0.5);
    std::optional<json::Value> baseline = json::parse(base);
    std::optional<json::Value> current = json::parse(cur);
    ASSERT_TRUE(baseline && current);
    std::string error;
    const auto report = compareResults(*baseline, *current, nullptr,
                                       nullptr, RegressOptions{}, &error);
    ASSERT_TRUE(report.has_value()) << error;
    const std::string rendered =
        renderRegressionReport(*report, RegressOptions{});
    const std::optional<json::Value> parsed = json::parse(rendered);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->getString("schema"), "tcsim-regression-v1");
    const json::Value *regressed = parsed->find("regressed");
    ASSERT_NE(regressed, nullptr);
    ASSERT_TRUE(regressed->isBool());
    EXPECT_TRUE(regressed->asBool());
    const json::Value *rendered_units = parsed->find("units");
    ASSERT_NE(rendered_units, nullptr);
    EXPECT_EQ(rendered_units->items().size(), kUnits.size());
}

// ---------------------------------------------------------------------
// Status server authentication.
// ---------------------------------------------------------------------

std::string
httpGet(std::uint16_t port, const std::string &auth_header)
{
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr)) != 0) {
        close(fd);
        return "";
    }
    std::string request = "GET /status HTTP/1.0\r\n";
    if (!auth_header.empty())
        request += auth_header + "\r\n";
    request += "\r\n";
    (void)!write(fd, request.data(), request.size());
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = read(fd, buf, sizeof(buf))) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    close(fd);
    return response;
}

TEST(StatusServer, RejectsWithoutTokenServesWithIt)
{
    StatusServer server;
    ASSERT_TRUE(server.start("127.0.0.1", 0, "hunter2"));
    ASSERT_NE(server.port(), 0);
    server.publish("{\"schema\": \"tcsim-farm-status-v1\"}\n");

    const std::string unauth = httpGet(server.port(), "");
    EXPECT_NE(unauth.find("401"), std::string::npos) << unauth;
    EXPECT_EQ(unauth.find("tcsim-farm-status-v1"), std::string::npos)
        << "401 must not leak the snapshot";

    const std::string wrong =
        httpGet(server.port(), "Authorization: Bearer nope");
    EXPECT_NE(wrong.find("401"), std::string::npos) << wrong;

    const std::string ok =
        httpGet(server.port(), "Authorization: Bearer hunter2");
    EXPECT_NE(ok.find("200"), std::string::npos) << ok;
    EXPECT_NE(ok.find("tcsim-farm-status-v1"), std::string::npos) << ok;
    server.stop();
}

TEST(StatusServer, RefusesEmptyToken)
{
    StatusServer server;
    EXPECT_FALSE(server.start("127.0.0.1", 0, ""));
    EXPECT_FALSE(server.running());
}

} // namespace
