/**
 * @file
 * Tests for the workload substrate: program builder, functional
 * executor, sparse memory, generator determinism and the benchmark
 * suite's stream properties.
 */

#include <gtest/gtest.h>

#include "workload/builder.h"
#include "workload/characterize.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/profile.h"
#include "workload/program.h"

namespace tcsim::workload
{
namespace
{

using isa::Opcode;

// ----------------------------------------------------------------------
// SparseMemory.
// ----------------------------------------------------------------------

TEST(SparseMemory, UnmappedReadsZero)
{
    SparseMemory mem;
    EXPECT_EQ(mem.load(0x123456789ULL), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(SparseMemory, StoreLoadRoundTrip)
{
    SparseMemory mem;
    mem.store(0x1000, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.load(0x1000), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.numPages(), 1u);
}

TEST(SparseMemory, AccessesForceAligned)
{
    SparseMemory mem;
    mem.store(0x1003, 42); // aligns down to 0x1000
    EXPECT_EQ(mem.load(0x1000), 42u);
    EXPECT_EQ(mem.load(0x1007), 42u);
    EXPECT_EQ(mem.load(0x1008), 0u);
}

TEST(SparseMemory, DistinctPages)
{
    SparseMemory mem;
    mem.store(0x0, 1);
    mem.store(0x10000, 2);
    EXPECT_EQ(mem.numPages(), 2u);
    EXPECT_EQ(mem.load(0x0), 1u);
    EXPECT_EQ(mem.load(0x10000), 2u);
}

// ----------------------------------------------------------------------
// ProgramBuilder.
// ----------------------------------------------------------------------

TEST(Builder, ForwardAndBackwardBranchFixups)
{
    ProgramBuilder b("t");
    Label top = b.here();
    b.addi(3, 3, 1);
    Label fwd = b.newLabel();
    b.beq(3, 0, fwd);   // forward
    b.bne(3, 0, top);   // backward
    b.bind(fwd);
    b.halt();
    Program p = b.build();

    const isa::Instruction &beq = p.fetch(kCodeBase + 4);
    EXPECT_EQ(isa::directTarget(beq, kCodeBase + 4), kCodeBase + 12);
    const isa::Instruction &bne = p.fetch(kCodeBase + 8);
    EXPECT_EQ(isa::directTarget(bne, kCodeBase + 8), kCodeBase);
}

TEST(Builder, DataAllocationAlignedAndDisjoint)
{
    ProgramBuilder b("t");
    const Addr a1 = b.allocData(10);
    const Addr a2 = b.allocData(8);
    EXPECT_EQ(a1 % 8, 0u);
    EXPECT_EQ(a2 % 8, 0u);
    EXPECT_GE(a2, a1 + 10);
    b.halt();
    (void)b.build();
}

TEST(Builder, DataLabelsResolveToCode)
{
    ProgramBuilder b("t");
    const Addr slot = b.allocData(8);
    b.nop();
    Label target = b.newLabel();
    b.setDataLabel(slot, target);
    b.bind(target);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.initData().at(slot), kCodeBase + 4);
}

TEST(Builder, LoadImm64TwoInstructionSequence)
{
    ProgramBuilder b("t");
    b.loadImm64(5, 0xabcd1234);
    b.halt();
    Program p = b.build();
    FunctionalExecutor exec(p);
    exec.step();
    exec.step();
    EXPECT_EQ(exec.reg(5), 0xabcd1234u);
}

TEST(Builder, EntryDefaultsToCodeBase)
{
    ProgramBuilder b("t");
    b.halt();
    EXPECT_EQ(b.build().entry(), kCodeBase);
}

TEST(Builder, GeneratedEncodingsRoundTrip)
{
    // Every instruction a generated benchmark emits must be encodable.
    BenchmarkProfile profile = benchmarkSuite().front();
    profile.numFunctions = 12;
    Program p = generateProgram(profile);
    for (Addr a = p.codeBase(); a < p.codeLimit(); a += isa::kInstBytes) {
        const isa::Instruction &inst = p.fetch(a);
        ASSERT_EQ(isa::decode(isa::encode(inst)), inst)
            << isa::disassemble(inst, a);
    }
}

// ----------------------------------------------------------------------
// Program image.
// ----------------------------------------------------------------------

TEST(Program, FetchOutsideCodeReturnsNop)
{
    ProgramBuilder b("t");
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.fetch(0x4).op, Opcode::Nop);
    EXPECT_EQ(p.fetch(p.codeLimit()).op, Opcode::Nop);
    EXPECT_EQ(p.fetch(kCodeBase + 2).op, Opcode::Nop); // misaligned
}

TEST(Program, IsCodeBounds)
{
    ProgramBuilder b("t");
    b.nop();
    b.halt();
    Program p = b.build();
    EXPECT_TRUE(p.isCode(kCodeBase));
    EXPECT_TRUE(p.isCode(kCodeBase + 4));
    EXPECT_FALSE(p.isCode(kCodeBase + 8));
    EXPECT_FALSE(p.isCode(kCodeBase - 4));
}

// ----------------------------------------------------------------------
// FunctionalExecutor on hand-written programs.
// ----------------------------------------------------------------------

TEST(Executor, ArithmeticAndHalt)
{
    ProgramBuilder b("t");
    b.addi(3, 0, 7);
    b.addi(4, 0, 5);
    b.add(5, 3, 4);
    b.mul(6, 3, 4);
    b.sub(7, 3, 4);
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(5), 12u);
    EXPECT_EQ(exec.reg(6), 35u);
    EXPECT_EQ(static_cast<std::int64_t>(exec.reg(7)), 2);
    EXPECT_EQ(exec.instCount(), 6u);
}

TEST(Executor, LoopSum)
{
    // sum = 1 + 2 + ... + 10
    ProgramBuilder b("t");
    b.addi(3, 0, 10); // i = 10
    b.addi(4, 0, 0);  // sum = 0
    Label top = b.here();
    b.add(4, 4, 3);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(4), 55u);
}

TEST(Executor, CallAndReturn)
{
    ProgramBuilder b("t");
    Label fn = b.newLabel();
    b.call(fn);
    b.addi(4, 3, 1); // after return: r4 = r3 + 1
    b.halt();
    b.bind(fn);
    b.addi(3, 0, 41);
    b.ret();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(4), 42u);
}

TEST(Executor, JumpTableDispatch)
{
    ProgramBuilder b("t");
    const Addr table = b.allocData(16);
    Label case0 = b.newLabel(), case1 = b.newLabel(), join = b.newLabel();
    b.setDataLabel(table, case0);
    b.setDataLabel(table + 8, case1);
    // select case 1
    b.loadImm64(5, static_cast<std::uint32_t>(table));
    b.ld(6, 8, 5);
    b.jr(6);
    b.bind(case0);
    b.addi(7, 0, 100);
    b.j(join);
    b.bind(case1);
    b.addi(7, 0, 200);
    b.j(join);
    b.bind(join);
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(7), 200u);
}

TEST(Executor, MemoryStoreLoad)
{
    ProgramBuilder b("t");
    const Addr buf = b.allocData(64);
    b.loadImm64(5, static_cast<std::uint32_t>(buf));
    b.addi(6, 0, 77);
    b.st(6, 16, 5);
    b.ld(7, 16, 5);
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(7), 77u);
    EXPECT_EQ(exec.memory().load(buf + 16), 77u);
}

TEST(Executor, InitialDataVisible)
{
    ProgramBuilder b("t");
    const Addr buf = b.allocData(8);
    b.setData(buf, 0x1234);
    b.loadImm64(5, static_cast<std::uint32_t>(buf));
    b.ld(6, 0, 5);
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(6), 0x1234u);
}

TEST(Executor, BranchDirectionsAndShifts)
{
    ProgramBuilder b("t");
    b.addi(3, 0, -5);
    b.addi(4, 0, 5);
    b.slt(5, 3, 4);   // signed: 1
    b.sltu(6, 3, 4);  // unsigned: huge > 5 -> 0
    b.srli(7, 4, 1);  // 2
    b.sra(8, 3, 7);   // -5 >> 2 = -2
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(5), 1u);
    EXPECT_EQ(exec.reg(6), 0u);
    EXPECT_EQ(static_cast<std::int64_t>(exec.reg(8)), -2);
}

TEST(Executor, DivByZeroDefined)
{
    ProgramBuilder b("t");
    b.addi(3, 0, 9);
    b.div(5, 3, 0);
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    while (!exec.halted())
        exec.step();
    EXPECT_EQ(exec.reg(5), ~std::uint64_t{0});
}

TEST(Executor, StepAfterHaltIsIdempotent)
{
    ProgramBuilder b("t");
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    exec.step();
    EXPECT_TRUE(exec.halted());
    const Addr pc = exec.pc();
    const StepResult r = exec.step();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(exec.pc(), pc);
}

TEST(Executor, TakenRecordsAndNextPc)
{
    ProgramBuilder b("t");
    Label t = b.newLabel();
    b.addi(3, 0, 1);
    b.bne(3, 0, t); // taken
    b.nop();
    b.bind(t);
    b.halt();
    Program prog = b.build();
    FunctionalExecutor exec(prog);
    exec.step();
    const StepResult r = exec.step();
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPc, kCodeBase + 12);
}

// ----------------------------------------------------------------------
// Generator and suite.
// ----------------------------------------------------------------------

TEST(Generator, DeterministicForSeed)
{
    const BenchmarkProfile &profile = benchmarkSuite().front();
    Program a = generateProgram(profile);
    Program c = generateProgram(profile);
    ASSERT_EQ(a.codeSize(), c.codeSize());
    for (Addr addr = a.codeBase(); addr < a.codeLimit();
         addr += isa::kInstBytes) {
        ASSERT_EQ(a.fetch(addr), c.fetch(addr));
    }
    EXPECT_EQ(a.initData(), c.initData());
}

TEST(Generator, SeedChangesProgram)
{
    BenchmarkProfile profile = benchmarkSuite().front();
    Program a = generateProgram(profile);
    profile.seed += 1;
    Program c = generateProgram(profile);
    EXPECT_NE(a.codeSize(), c.codeSize());
}

TEST(Suite, HasFifteenBenchmarks)
{
    EXPECT_EQ(benchmarkSuite().size(), 15u);
}

TEST(Suite, FindProfileByName)
{
    EXPECT_EQ(findProfile("gcc").name, "gcc");
    EXPECT_EQ(findProfile("tex").name, "tex");
}

class SuiteStream : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteStream, StreamPropertiesInRange)
{
    const BenchmarkProfile &profile = findProfile(GetParam());
    Program p = generateProgram(profile);
    const WorkloadStats ws = characterize(p, 120000);

    EXPECT_EQ(ws.instCount, 120000u) << "program halted early";

    // Conditional-branch density typical of integer code.
    const double cond_frac =
        static_cast<double>(ws.condBranches) / ws.instCount;
    EXPECT_GT(cond_frac, 0.04);
    EXPECT_LT(cond_frac, 0.30);

    // Fill-block sizes in the range the trace cache responds to.
    EXPECT_GT(ws.avgFillBlockSize, 3.0);
    EXPECT_LT(ws.avgFillBlockSize, 13.0);

    // Taken fraction typical of loops + forward branches.
    const double taken =
        static_cast<double>(ws.condTaken) / ws.condBranches;
    EXPECT_GT(taken, 0.4);
    EXPECT_LT(taken, 0.98);

    // The stream must contain calls, returns and some indirection.
    EXPECT_GT(ws.calls, 0u);
    // The window can cut mid-call: allow the nesting depth as slack.
    EXPECT_NEAR(static_cast<double>(ws.calls),
                static_cast<double>(ws.returns), 8.0);
    EXPECT_GT(ws.indirectJumps, 0u);

    // A healthy share of dynamic branches continues long
    // same-direction runs (the promotion population).
    EXPECT_GT(ws.fracDynLongRun, 0.10);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteStream,
    ::testing::Values("compress", "gcc", "go", "ijpeg", "li", "m88ksim",
                      "perl", "vortex", "gnuchess", "ghostscript", "pgp",
                      "python", "gnuplot", "sim-outorder", "tex"),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        std::string name = param_info.param;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace tcsim::workload

namespace tcsim::workload
{
namespace
{

TEST(ProfileStaticBias, FindsBiasedSitesWithDirections)
{
    // A loop with a never-taken check and a strongly-taken latch.
    ProgramBuilder b("prof");
    b.addi(3, 0, 2000);
    Label top = b.here();
    Label cold = b.newLabel();
    const Addr check_pc = b.pc();
    b.bne(0, 0, cold); // never taken
    b.addi(4, 4, 1);
    const Addr latch_pc = b.pc();
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    b.bind(cold);
    b.j(top);
    Program p = b.build();

    const auto biased = profileStronglyBiased(p, 100000, 0.98, 16);
    ASSERT_TRUE(biased.count(check_pc));
    EXPECT_FALSE(biased.at(check_pc)); // dominant direction: not taken
    ASSERT_TRUE(biased.count(latch_pc + isa::kInstBytes));
    EXPECT_TRUE(biased.at(latch_pc + isa::kInstBytes)); // latch: taken
}

TEST(ProfileStaticBias, IgnoresRareAndUnbiasedSites)
{
    ProgramBuilder b("prof2");
    b.addi(3, 0, 400);
    Label top = b.here();
    b.andi(5, 3, 1);
    Label skip = b.newLabel();
    const Addr alternating_pc = b.pc();
    b.beq(5, 0, skip); // alternates every iteration
    b.addi(6, 6, 1);
    b.bind(skip);
    b.addi(3, 3, -1);
    b.bne(3, 0, top);
    b.halt();
    Program p = b.build();

    const auto biased = profileStronglyBiased(p, 100000, 0.98, 16);
    EXPECT_FALSE(biased.count(alternating_pc));
}

} // namespace
} // namespace tcsim::workload

#include "workload/serialize.h"

#include <sstream>

namespace tcsim::workload
{
namespace
{

TEST(Serialize, RoundTripsGeneratedProgram)
{
    BenchmarkProfile profile = benchmarkSuite().front();
    profile.numFunctions = 8;
    Program original = generateProgram(profile);

    std::stringstream buffer;
    ASSERT_TRUE(saveProgram(original, buffer));
    auto loaded = loadProgram(buffer);
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(loaded->name(), original.name());
    EXPECT_EQ(loaded->codeBase(), original.codeBase());
    EXPECT_EQ(loaded->entry(), original.entry());
    ASSERT_EQ(loaded->codeSize(), original.codeSize());
    for (Addr a = original.codeBase(); a < original.codeLimit();
         a += isa::kInstBytes) {
        ASSERT_EQ(loaded->fetch(a), original.fetch(a));
    }
    EXPECT_EQ(loaded->initData(), original.initData());

    // The reloaded image executes identically.
    FunctionalExecutor exec_a(original), exec_b(*loaded);
    for (int i = 0; i < 20000; ++i) {
        const StepResult sa = exec_a.step();
        const StepResult sb = exec_b.step();
        ASSERT_EQ(sa.pc, sb.pc);
        ASSERT_EQ(sa.nextPc, sb.nextPc);
        ASSERT_EQ(sa.result, sb.result);
    }
}

TEST(Serialize, RejectsGarbage)
{
    std::stringstream buffer("definitely not a program image");
    EXPECT_FALSE(loadProgram(buffer).has_value());
}

TEST(Serialize, RejectsTruncated)
{
    BenchmarkProfile profile = benchmarkSuite().front();
    profile.numFunctions = 8;
    Program original = generateProgram(profile);
    std::stringstream buffer;
    ASSERT_TRUE(saveProgram(original, buffer));
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    EXPECT_FALSE(loadProgram(truncated).has_value());
}

} // namespace
} // namespace tcsim::workload

namespace tcsim::workload
{
namespace
{

TEST(BuilderDeath, DoubleBindAborts)
{
    ProgramBuilder b("t");
    Label label = b.here();
    EXPECT_DEATH(b.bind(label), "bound twice");
}

TEST(BuilderDeath, UnboundLabelAtBuildAborts)
{
    ProgramBuilder b("t");
    Label label = b.newLabel();
    b.j(label);
    EXPECT_DEATH(b.build(), "unbound label");
}

TEST(BuilderDeath, DefaultLabelAborts)
{
    ProgramBuilder b("t");
    Label label;
    EXPECT_DEATH(b.j(label), "default-constructed");
}

TEST(BuilderDeath, MisalignedDataWordAborts)
{
    ProgramBuilder b("t");
    EXPECT_DEATH(b.setData(0x1001, 1), "unaligned");
}

} // namespace
} // namespace tcsim::workload
