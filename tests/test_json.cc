/**
 * @file
 * Tests for the minimal JSON reader: lexeme-exact number round-trips,
 * member order, typed lookups with fallbacks, and rejection of
 * malformed documents (the merge layer leans on that to classify
 * half-written fragments as corrupt instead of trusting them).
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace
{

using namespace tcsim;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(json::parse("null")->isNull());
    EXPECT_TRUE(json::parse("true")->asBool());
    EXPECT_FALSE(json::parse("false")->asBool());
    EXPECT_EQ(json::parse("\"hi\"")->asString(), "hi");
    EXPECT_EQ(json::parse("42")->asUint64(), 42u);
    EXPECT_EQ(json::parse("-7")->asInt64(), -7);
    EXPECT_DOUBLE_EQ(json::parse("2.5e1")->asDouble(), 25.0);
}

TEST(Json, Uint64RoundTripsExactly)
{
    // Doubles cannot represent this; the lexeme-preserving reader must.
    const auto v = json::parse("18446744073709551615");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->asUint64(), 18446744073709551615ull);
}

TEST(Json, ParsesNestedStructure)
{
    const auto v = json::parse(
        "{\"a\": [1, 2, {\"b\": \"x\\n\\\"y\"}], \"c\": {}}");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->isObject());
    const json::Value *a = v->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[1].asUint64(), 2u);
    EXPECT_EQ(a->items()[2].getString("b"), "x\n\"y");
    EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, PreservesMemberOrder)
{
    const auto v = json::parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->members().size(), 3u);
    EXPECT_EQ(v->members()[0].first, "z");
    EXPECT_EQ(v->members()[1].first, "a");
    EXPECT_EQ(v->members()[2].first, "m");
}

TEST(Json, TypedLookupsFallBack)
{
    const auto v =
        json::parse("{\"n\": 9, \"s\": \"str\", \"d\": 1.5}");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->getUint64("n"), 9u);
    EXPECT_EQ(v->getUint64("absent", 77), 77u);
    EXPECT_EQ(v->getUint64("s", 77), 77u); // wrong type
    EXPECT_EQ(v->getString("s"), "str");
    EXPECT_EQ(v->getString("n", "fb"), "fb"); // wrong type
    EXPECT_DOUBLE_EQ(v->getDouble("d"), 1.5);
    EXPECT_DOUBLE_EQ(v->getDouble("absent", -1.0), -1.0);
}

TEST(Json, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(json::parse("", &error).has_value());
    EXPECT_FALSE(json::parse("{", &error).has_value());
    EXPECT_FALSE(json::parse("{\"a\": }", &error).has_value());
    EXPECT_FALSE(json::parse("[1, 2", &error).has_value());
    EXPECT_FALSE(json::parse("\"unterminated", &error).has_value());
    EXPECT_FALSE(json::parse("{\"a\": 1} trailing", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(Json, ParseFileReadsAndFails)
{
    const std::string path =
        testing::TempDir() + "/tcsim_json_test.json";
    {
        std::ofstream out(path);
        out << "{\"k\": 123}\n";
    }
    const auto v = json::parseFile(path);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->getUint64("k"), 123u);
    std::remove(path.c_str());
    EXPECT_FALSE(json::parseFile(path).has_value());
}

} // namespace
