/**
 * @file
 * Tests for the prediction structures: global history, the return
 * address stack, the branch bias table (promotion/demotion rules),
 * the indirect predictor, the hybrid predictor and both multiple
 * branch predictor organizations.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bpred/bias_table.h"
#include "bpred/history.h"
#include "bpred/hybrid.h"
#include "bpred/indirect.h"
#include "bpred/multi.h"
#include "bpred/ras.h"

namespace tcsim::bpred
{
namespace
{

// ----------------------------------------------------------------------
// Global history.
// ----------------------------------------------------------------------

TEST(History, PushShiftsInAtBitZero)
{
    GlobalHistory h;
    h.push(true);
    h.push(false);
    h.push(true);
    EXPECT_EQ(h.value(), 0b101u);
}

TEST(History, Restore)
{
    GlobalHistory h;
    h.push(true);
    const std::uint64_t snap = h.value();
    h.push(false);
    h.push(true);
    h.restore(snap);
    EXPECT_EQ(h.value(), snap);
}

// ----------------------------------------------------------------------
// Return address stack.
// ----------------------------------------------------------------------

TEST(Ras, LifoOrder)
{
    ReturnAddressStack ras;
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, UnderflowReturnsInvalid)
{
    ReturnAddressStack ras;
    EXPECT_EQ(ras.pop(), kInvalidAddr);
}

TEST(Ras, SnapshotRestoreRepairsDepthAndTop)
{
    ReturnAddressStack ras;
    ras.push(0x100);
    ras.push(0x200);
    const auto cp = ras.snapshot();
    // Wrong path: pop twice, push garbage.
    ras.pop();
    ras.pop();
    ras.push(0xbad);
    ras.restore(cp);
    // (depth, top) repair restores the depth and the top entry; deeper
    // entries clobbered by wrong-path overwrite are not recoverable
    // (the processor uses rebuild-based recovery instead).
    EXPECT_EQ(ras.depth(), 2u);
    EXPECT_EQ(ras.pop(), 0x200u);
}

TEST(Ras, FiniteDepthDropsBottom)
{
    ReturnAddressStack ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);
    EXPECT_EQ(ras.depth(), 2u);
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
    EXPECT_EQ(ras.pop(), kInvalidAddr);
}

TEST(Ras, AssignAndContents)
{
    ReturnAddressStack ras;
    ras.assign({0x10, 0x20});
    EXPECT_EQ(ras.contents().size(), 2u);
    EXPECT_EQ(ras.pop(), 0x20u);
}

// ----------------------------------------------------------------------
// Branch bias table.
// ----------------------------------------------------------------------

BiasTableParams
biasParams(std::uint32_t threshold)
{
    BiasTableParams params;
    params.entries = 256;
    params.promoteThreshold = threshold;
    return params;
}

TEST(BiasTable, PromotesAtThreshold)
{
    BranchBiasTable table(biasParams(4));
    const Addr pc = 0x1000;
    for (int i = 0; i < 3; ++i) {
        table.update(pc, true);
        EXPECT_FALSE(table.advice(pc).promote);
    }
    table.update(pc, true); // 4th consecutive
    const PromotionAdvice advice = table.advice(pc);
    EXPECT_TRUE(advice.promote);
    EXPECT_TRUE(advice.direction);
    EXPECT_EQ(table.promotions(), 1u);
}

TEST(BiasTable, PromotesNotTakenDirection)
{
    BranchBiasTable table(biasParams(3));
    const Addr pc = 0x2000;
    for (int i = 0; i < 3; ++i)
        table.update(pc, false);
    const PromotionAdvice advice = table.advice(pc);
    EXPECT_TRUE(advice.promote);
    EXPECT_FALSE(advice.direction);
}

TEST(BiasTable, SingleOppositeOutcomeDoesNotDemote)
{
    // The paper's loop-latch rationale: the final loop iteration must
    // not demote an otherwise strongly biased branch.
    BranchBiasTable table(biasParams(4));
    const Addr pc = 0x3000;
    for (int i = 0; i < 6; ++i)
        table.update(pc, true);
    table.update(pc, false); // loop exit
    EXPECT_TRUE(table.advice(pc).promote);
    EXPECT_TRUE(table.advice(pc).direction);
    EXPECT_EQ(table.demotions(), 0u);
}

TEST(BiasTable, TwoConsecutiveOppositeOutcomesDemote)
{
    BranchBiasTable table(biasParams(4));
    const Addr pc = 0x3000;
    for (int i = 0; i < 6; ++i)
        table.update(pc, true);
    table.update(pc, false);
    table.update(pc, false);
    EXPECT_FALSE(table.advice(pc).promote);
    EXPECT_EQ(table.demotions(), 1u);
}

TEST(BiasTable, RePromotionAfterDemotion)
{
    BranchBiasTable table(biasParams(4));
    const Addr pc = 0x3000;
    for (int i = 0; i < 5; ++i)
        table.update(pc, true);
    table.update(pc, false);
    table.update(pc, false); // demoted
    for (int i = 0; i < 2; ++i)
        table.update(pc, false);
    // Four consecutive not-taken: promoted the other way.
    const PromotionAdvice advice = table.advice(pc);
    EXPECT_TRUE(advice.promote);
    EXPECT_FALSE(advice.direction);
}

TEST(BiasTable, TagConflictEvictsPromotion)
{
    BiasTableParams params = biasParams(2);
    BranchBiasTable table(params);
    const Addr pc = 0x1000;
    // Same index, different tag.
    const Addr alias = pc + params.entries * isa::kInstBytes;
    table.update(pc, true);
    table.update(pc, true);
    EXPECT_TRUE(table.advice(pc).promote);
    table.update(alias, false); // displaces
    EXPECT_FALSE(table.advice(pc).promote);
}

TEST(BiasTable, AdviceMissIsNoPromote)
{
    BranchBiasTable table(biasParams(2));
    EXPECT_FALSE(table.advice(0x9999000).promote);
}

TEST(BiasTable, CheckpointRoundTripPreservesTrainingState)
{
    BranchBiasTable table(biasParams(3));
    for (int i = 0; i < 4; ++i)
        table.update(0x1000, true); // promoted taken
    for (int i = 0; i < 3; ++i)
        table.update(0x2004, false); // promoted not-taken
    table.update(0x3008, true); // partially trained
    std::ostringstream blob;
    table.saveState(blob);

    BranchBiasTable restored(biasParams(3));
    std::istringstream is(blob.str());
    ASSERT_TRUE(restored.restoreState(is));
    EXPECT_TRUE(restored.advice(0x1000).promote);
    EXPECT_TRUE(restored.advice(0x1000).direction);
    EXPECT_TRUE(restored.advice(0x2004).promote);
    EXPECT_FALSE(restored.advice(0x2004).direction);
    EXPECT_FALSE(restored.advice(0x3008).promote);
    EXPECT_EQ(restored.promotions(), table.promotions());
    EXPECT_EQ(restored.demotions(), table.demotions());

    // And a restored table keeps producing bit-identical blobs.
    std::ostringstream again;
    restored.saveState(again);
    EXPECT_EQ(again.str(), blob.str());
}

TEST(BiasTable, CheckpointKeepsWideTagFormat)
{
    // The 8-byte in-memory entry must not change the TCBIASv1 bytes:
    // tags stay 64-bit on disk and empty slots stay all-ones, so
    // blobs written before the packing restore unchanged.
    BiasTableParams params = biasParams(3);
    BranchBiasTable table(params);
    std::ostringstream blob;
    table.saveState(blob);
    const std::string bytes = blob.str();
    const std::size_t header = 8 + 3 * sizeof(std::uint32_t) +
                               2 * sizeof(std::uint64_t);
    ASSERT_EQ(bytes.size(), header + params.entries * 12);
    for (std::size_t i = 0; i < 12; ++i) {
        const unsigned char byte = bytes[header + i];
        EXPECT_EQ(byte, i < 8 ? 0xFF : 0x00) << "entry byte " << i;
    }
}

TEST(BiasTable, RestoreRejectsUnrepresentableTag)
{
    // A (hand-corrupted) blob whose tag needs more than 32 bits can't
    // be represented by the packed entry and must be rejected, not
    // silently truncated into a false match.
    BiasTableParams params = biasParams(3);
    BranchBiasTable table(params);
    std::ostringstream blob;
    table.saveState(blob);
    std::string bytes = blob.str();
    const std::size_t header = 8 + 3 * sizeof(std::uint32_t) +
                               2 * sizeof(std::uint64_t);
    // First entry's tag: 0x0000000100000000 (little-endian on every
    // platform this sim supports).
    for (std::size_t i = 0; i < 8; ++i)
        bytes[header + i] = i == 4 ? 1 : 0;
    std::istringstream is(bytes);
    EXPECT_FALSE(table.restoreState(is));
}

// ----------------------------------------------------------------------
// Indirect predictor.
// ----------------------------------------------------------------------

TEST(Indirect, ColdMissThenLastTarget)
{
    IndirectPredictor pred(64);
    EXPECT_EQ(pred.predict(0x100), kInvalidAddr);
    pred.update(0x100, 0x5000);
    EXPECT_EQ(pred.predict(0x100), 0x5000u);
    pred.update(0x100, 0x6000);
    EXPECT_EQ(pred.predict(0x100), 0x6000u);
}

TEST(Indirect, UntaggedAliasing)
{
    IndirectPredictor pred(16);
    pred.update(0x100, 0x5000);
    // Same index, different pc: untagged tables alias by design.
    pred.update(0x100 + 16 * isa::kInstBytes, 0x7000);
    EXPECT_EQ(pred.predict(0x100), 0x7000u);
}

// ----------------------------------------------------------------------
// Hybrid predictor.
// ----------------------------------------------------------------------

TEST(Hybrid, LearnsStrongBias)
{
    HybridPredictor hyb;
    GlobalHistory gh;
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        const HybridCtx ctx = hyb.predict(0x100, gh.value());
        if (i > 20 && !ctx.prediction)
            ++wrong;
        hyb.update(0x100, ctx, true);
        gh.push(true);
    }
    EXPECT_EQ(wrong, 0);
}

TEST(Hybrid, PasLearnsPeriodicPattern)
{
    // Period-5 loop pattern: the PAs side must converge even though
    // the pattern is longer than a 2-bit counter can express.
    HybridPredictor hyb;
    GlobalHistory gh;
    int wrong = 0, n = 0;
    for (int rep = 0; rep < 600; ++rep) {
        for (int i = 0; i < 5; ++i) {
            const bool taken = i < 4;
            const HybridCtx ctx = hyb.predict(0x200, gh.value());
            if (rep > 100) {
                ++n;
                wrong += ctx.prediction != taken;
            }
            hyb.update(0x200, ctx, taken);
            gh.push(taken);
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / n, 0.02);
}

// ----------------------------------------------------------------------
// Multiple branch predictors.
// ----------------------------------------------------------------------

template <typename Mbp>
double
trainFirstPosition(Mbp &mbp, bool direction)
{
    const Addr fetch = 0x4000;
    int wrong = 0, n = 0;
    std::uint64_t hist = 0;
    for (int i = 0; i < 200; ++i) {
        const bool pred = mbp.predict(fetch, hist, 0, 0);
        if (i > 20) {
            ++n;
            wrong += pred != direction;
        }
        MbpCtx ctx;
        ctx.fetchAddr = fetch;
        ctx.history = hist;
        ctx.position = 0;
        ctx.path = 0;
        mbp.update(ctx, direction);
        hist = (hist << 1) | static_cast<std::uint64_t>(direction);
    }
    return static_cast<double>(wrong) / n;
}

TEST(TreeMbp, LearnsFirstPosition)
{
    TreeMbp mbp;
    EXPECT_EQ(mbp.maxPredictions(), 3u);
    EXPECT_EQ(trainFirstPosition(mbp, true), 0.0);
}

TEST(SplitMbp, LearnsFirstPosition)
{
    SplitMbp mbp;
    EXPECT_EQ(trainFirstPosition(mbp, false), 0.0);
}

TEST(TreeMbp, PathConditionsLaterPredictions)
{
    // Second branch direction depends on the first branch's outcome:
    // the tree organization can represent this with a fixed history.
    TreeMbp mbp;
    const Addr fetch = 0x8000;
    const std::uint64_t hist = 0x155;
    for (int i = 0; i < 100; ++i) {
        const bool b0 = i % 2 == 0;
        MbpCtx c0{fetch, hist, 0, 0, false};
        mbp.update(c0, b0);
        MbpCtx c1{fetch, hist, 1,
                  static_cast<std::uint8_t>(b0 ? 1 : 0), false};
        mbp.update(c1, b0); // second branch equals the first
    }
    EXPECT_TRUE(mbp.predict(fetch, hist, 1, 1));
    EXPECT_FALSE(mbp.predict(fetch, hist, 1, 0));
}

TEST(SplitMbp, PositionsAreIndependentTables)
{
    SplitMbp mbp;
    const Addr fetch = 0x8000;
    const std::uint64_t hist = 0x2a;
    // Train position 0 taken, position 2 not-taken at the same index.
    for (int i = 0; i < 50; ++i) {
        MbpCtx c0{fetch, hist, 0, 0, false};
        mbp.update(c0, true);
        MbpCtx c2{fetch, hist, 2, 0, false};
        mbp.update(c2, false);
    }
    EXPECT_TRUE(mbp.predict(fetch, hist, 0, 0));
    EXPECT_FALSE(mbp.predict(fetch, hist, 2, 0));
}

TEST(TreeMbp, DistinctHistoriesDistinctEntries)
{
    TreeMbp mbp(1024);
    const Addr fetch = 0x4000;
    for (int i = 0; i < 50; ++i) {
        MbpCtx a{fetch, 0x0, 0, 0, false};
        mbp.update(a, true);
        MbpCtx b{fetch, 0x1, 0, 0, false};
        mbp.update(b, false);
    }
    EXPECT_TRUE(mbp.predict(fetch, 0x0, 0, 0));
    EXPECT_FALSE(mbp.predict(fetch, 0x1, 0, 0));
}

} // namespace
} // namespace tcsim::bpred

namespace tcsim::bpred
{
namespace
{

TEST(Hybrid, SelectorPrefersBetterComponent)
{
    // A branch whose outcome equals the last outcome of itself
    // (local history bit 0): PAs-friendly, gshare-hostile when global
    // history is polluted by unrelated branches.
    HybridPredictor hyb;
    GlobalHistory gh;
    std::uint64_t x = 7;
    int late_wrong = 0, late_n = 0;
    bool prev = false;
    for (int i = 0; i < 4000; ++i) {
        // Pollute global history with two pseudo-random branches.
        for (int k = 0; k < 2; ++k) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            const bool noise = (x >> 40) & 1;
            const HybridCtx nctx = hyb.predict(0x900 + 8 * k, gh.value());
            hyb.update(0x900 + 8 * k, nctx, noise);
            gh.push(noise);
        }
        // The PAs-predictable branch: period-2 alternation.
        const bool taken = !prev;
        prev = taken;
        const HybridCtx ctx = hyb.predict(0x500, gh.value());
        if (i > 1000) {
            ++late_n;
            late_wrong += ctx.prediction != taken;
        }
        hyb.update(0x500, ctx, taken);
        gh.push(taken);
    }
    // Alternation is trivially in local history. The gshare side
    // alone would be near 50% under this history pollution; the
    // selector routing to PAs must do substantially better, though
    // per-history selector entries train slowly (each (pc ^ history)
    // pattern needs its own votes), so convergence is partial.
    EXPECT_LT(static_cast<double>(late_wrong) / late_n, 0.30);
}

TEST(TreeMbp, AliasingIsBounded)
{
    // Two branches with colliding (addr ^ history) indices interfere;
    // verify training one does perturb the other (documents the
    // interference promotion removes).
    TreeMbp mbp(16);
    const Addr a = 0x100;
    const Addr b = a + 16 * isa::kInstBytes; // same index, hist 0
    for (int i = 0; i < 8; ++i) {
        MbpCtx ctx{a, 0, 0, 0, false};
        mbp.update(ctx, true);
    }
    EXPECT_TRUE(mbp.predict(b, 0, 0, 0)) << "aliased entry shared";
}

TEST(BiasTable, CounterSaturatesAtMax)
{
    BiasTableParams params;
    params.entries = 64;
    params.promoteThreshold = 4;
    params.counterMax = 7;
    BranchBiasTable table(params);
    for (int i = 0; i < 100; ++i)
        table.update(0x40, true);
    // Still promoted and stable after saturation.
    EXPECT_TRUE(table.advice(0x40).promote);
    table.update(0x40, false);
    EXPECT_TRUE(table.advice(0x40).promote) << "single flip keeps it";
}

} // namespace
} // namespace tcsim::bpred
