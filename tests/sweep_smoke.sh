#!/bin/bash
# End-to-end smoke test for the tcsim_sweep binary, driven by ctest:
#
#  1. cold single-process run (populates the artifact cache),
#  2. warm rerun — must be byte-identical with every cache lookup a
#     hit (hits change wall-clock only, never results),
#  3. 2-shard run with worker 0 SIGKILLed after one unit, --check
#     reporting the lost unit, a --worklist retry, and a --merge that
#     must reproduce the single-process document byte for byte.
#
# Usage: sweep_smoke.sh <cmake-build-dir>
set -eu

bin="$1/tools/tcsim_sweep"
[ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

margs=(--benchmarks compress,li --configs baseline,promotion-t64
       --insts 20000 --warmup 5000 --cache-dir "$scratch/cache")

echo "== cold single-process reference =="
"$bin" "${margs[@]}" --out "$scratch/single.json"

echo "== warm rerun: byte-identical, all hits =="
"$bin" "${margs[@]}" --out "$scratch/warm.json" \
       --timing-out "$scratch/timing.json"
cmp "$scratch/single.json" "$scratch/warm.json"
python3 - "$scratch/timing.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "tcsim-bench-timing-v1", doc["schema"]
cache = doc["cache"]
assert cache["enabled"], cache
assert cache["hits"] > 0 and cache["misses"] == 0, cache
EOF

echo "== shard 0/2 with injected SIGKILL =="
if "$bin" "${margs[@]}" --shard 0/2 \
       --fragments-dir "$scratch/frags" --die-after 1; then
    echo "worker 0 should have been killed" >&2
    exit 1
fi

echo "== shard 1/2 runs to completion =="
"$bin" "${margs[@]}" --shard 1/2 --fragments-dir "$scratch/frags"

echo "== check reports the lost unit =="
rc=0
"$bin" "${margs[@]}" --check --fragments-dir "$scratch/frags" \
       > "$scratch/missing.txt" || rc=$?
[ "$rc" -eq 2 ] || { echo "expected check exit 2, got $rc" >&2; exit 1; }
[ -s "$scratch/missing.txt" ] || { echo "no missing units listed" >&2; exit 1; }

echo "== worklist retry fills the hole =="
"$bin" "${margs[@]}" --worklist "$scratch/missing.txt" \
       --fragments-dir "$scratch/frags"
"$bin" "${margs[@]}" --check --fragments-dir "$scratch/frags"

echo "== merge is byte-identical to single-process =="
"$bin" "${margs[@]}" --merge --fragments-dir "$scratch/frags" \
       --out "$scratch/merged.json"
cmp "$scratch/single.json" "$scratch/merged.json"

echo "sweep smoke OK"
