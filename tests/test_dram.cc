/**
 * @file
 * Tests for the contended DRAM model: flat-path equivalence, bus
 * serialization, bank conflicts and open-row hits, the MSHR-style
 * outstanding-request limit, and whole-system equivalence of the
 * degenerate zero-contention configuration with the flat-latency
 * golden path.
 */

#include <gtest/gtest.h>

#include "memory/cache.h"
#include "memory/dram.h"
#include "obs/trace.h"
#include "sim/processor.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace tcsim::memory
{
namespace
{

TEST(Dram, FlatPathChargesConstantLatency)
{
    Dram dram; // contended defaults to false
    EXPECT_EQ(dram.access(0x0, false, 64, 0), 50u);
    EXPECT_EQ(dram.access(0x0, false, 64, 0), 50u); // no occupancy
    EXPECT_EQ(dram.access(0x12345, true, 64, 999), 50u);
    EXPECT_EQ(dram.reads(), 2u);
    EXPECT_EQ(dram.writes(), 1u);
    EXPECT_EQ(dram.busWaitCycles(), 0u);
}

TEST(Dram, BusSerializesBackToBackMisses)
{
    DramParams params;
    params.contended = true;
    params.busBytesPerCycle = 8; // 64B line -> 8 transfer cycles
    params.banks = 0;            // unbanked: flat 50-cycle core
    params.maxOutstanding = 0;
    Dram dram(params);

    // First transfer: no queueing, 50 core + 8 transfer.
    EXPECT_EQ(dram.access(0x0000, false, 64, 0), 58u);
    // Second request in the same cycle queues behind the first's bus
    // occupancy: 8 wait + 50 + 8.
    EXPECT_EQ(dram.access(0x1000, false, 64, 0), 66u);
    EXPECT_EQ(dram.busWaitCycles(), 8u);
    EXPECT_EQ(dram.busBusyCycles(), 16u);
    // After the bus drains the charge drops back to the minimum.
    EXPECT_EQ(dram.access(0x2000, false, 64, 1000), 58u);
}

TEST(Dram, BankConflictVsOpenRowHit)
{
    DramParams params;
    params.contended = true;
    params.busBytesPerCycle = 0; // infinite bus isolates bank timing
    params.banks = 2;
    params.rowBytes = 2048;
    params.rowHitLatency = 20;
    params.rowMissLatency = 50;
    params.maxOutstanding = 0;
    Dram dram(params);

    // Cold access opens the row: row-miss latency.
    EXPECT_EQ(dram.access(0x0, false, 64, 0), 50u);
    // Same row, same cycle: bank busy (conflict) then an open-row hit.
    EXPECT_EQ(dram.access(0x40, false, 64, 0), 70u);
    EXPECT_EQ(dram.bankConflicts(), 1u);
    EXPECT_EQ(dram.bankWaitCycles(), 50u);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowMisses(), 1u);
    // Adjacent row lands on the other bank: no conflict, row miss.
    EXPECT_EQ(dram.access(0x800, false, 64, 0), 50u);
    EXPECT_EQ(dram.bankConflicts(), 1u);
    // Once the bank is idle an open-row hit costs just the hit latency.
    EXPECT_EQ(dram.access(0x80, false, 64, 500), 20u);
}

TEST(Dram, MshrLimitStallsWhenFull)
{
    DramParams params;
    params.contended = true;
    params.busBytesPerCycle = 0;
    params.banks = 0;
    params.maxOutstanding = 1;
    Dram dram(params);

    EXPECT_EQ(dram.access(0x0, false, 64, 0), 50u);
    // The miss file is full until cycle 50: the second request waits
    // for the first to complete, then pays its own 50 cycles.
    EXPECT_EQ(dram.access(0x1000, false, 64, 0), 100u);
    EXPECT_EQ(dram.mshrStalls(), 1u);
    EXPECT_EQ(dram.mshrStallCycles(), 50u);
    // Once the outstanding transfer completed there is no stall.
    EXPECT_EQ(dram.access(0x2000, false, 64, 150), 50u);
    EXPECT_EQ(dram.mshrStalls(), 1u);
}

TEST(Dram, ZeroContentionCollapsesToFlatLatency)
{
    DramParams params;
    params.contended = true;
    params.busBytesPerCycle = 0; // infinite bandwidth
    params.banks = 0;            // unbanked
    params.maxOutstanding = 0;   // unlimited
    params.latency = 50;
    Dram dram(params);

    for (Cycle now : {Cycle{0}, Cycle{0}, Cycle{7}, Cycle{1000000}}) {
        EXPECT_EQ(dram.access(0x0, false, 64, now), 50u);
        EXPECT_EQ(dram.access(0xdeadbe00, true, 64, now), 50u);
    }
    EXPECT_EQ(dram.busWaitCycles(), 0u);
    EXPECT_EQ(dram.bankConflicts(), 0u);
    EXPECT_EQ(dram.mshrStalls(), 0u);
}

TEST(Dram, ContendedAccessEmitsMemTracePoints)
{
    DramParams params;
    params.contended = true;
    Dram dram(params);

    obs::Tracer tracer;
    auto sink = std::make_unique<obs::VectorSink>();
    obs::VectorSink *raw = sink.get();
    tracer.setMask(1u << static_cast<unsigned>(obs::Category::Mem));
    tracer.addSink(std::move(sink));
    dram.setTracer(&tracer);

    dram.access(0x0, false, 64, 0);
    dram.access(0x40, true, 64, 0);
    ASSERT_EQ(raw->records().size(), 2u);
    EXPECT_EQ(raw->records()[0].event, "dram_read");
    EXPECT_EQ(raw->records()[1].event, "dram_write");
}

TEST(Dram, StatsDumpAndReset)
{
    DramParams params;
    params.contended = true;
    params.busBytesPerCycle = 4;
    Dram dram(params);
    dram.access(0x0, false, 64, 0);
    dram.access(0x40, true, 64, 0);

    StatDump dump;
    dram.dumpStats(dump);
    EXPECT_DOUBLE_EQ(dump.get("dram.reads"), 1.0);
    EXPECT_DOUBLE_EQ(dump.get("dram.writes"), 1.0);
    EXPECT_GT(dump.get("dram.bus_wait_cycles"), 0.0);
    for (const auto &[name, value] : dump.entries())
        EXPECT_EQ(value, static_cast<double>(
                             static_cast<std::uint64_t>(value)))
            << name << " is not an integer";

    dram.resetStats();
    StatDump fresh;
    dram.dumpStats(fresh);
    EXPECT_DOUBLE_EQ(fresh.get("dram.reads"), 0.0);
    EXPECT_DOUBLE_EQ(fresh.get("dram.bus_wait_cycles"), 0.0);
}

// Regression: flush() used to count a writeback for every dirty line
// dropped but never issue the victim's data below, so with
// writebackToNext set the flush traffic vanished — dram.writes and
// writeback_cycles silently dropped it. The flush must charge each
// dirty victim exactly once, including the queueing delay it sees
// when it races an in-flight fill on the contended bus, and a second
// flush must add nothing (the lines are clean and gone).
TEST(Dram, FlushChargesDirtyVictimsExactlyOnce)
{
    CacheParams cparams;
    cparams.name = "l1d";
    cparams.sizeBytes = 256; // 4 sets x 1 way of 64B lines
    cparams.assoc = 1;
    cparams.lineBytes = 64;
    cparams.accessLatency = 0;
    cparams.writebackToNext = true;

    DramParams dparams;
    dparams.contended = true;
    dparams.busBytesPerCycle = 8; // 64B line -> 8 transfer cycles
    dparams.banks = 0;            // unbanked: flat 50-cycle core
    dparams.maxOutstanding = 0;
    Dram dram(dparams);

    Cache cache(cparams, nullptr);
    cache.setBackingDram(&dram);

    // Dirty two lines in different sets, far enough apart in time
    // that the setup fills never queue.
    cache.access(0x000, true, 0);
    cache.access(0x040, true, 200);
    EXPECT_EQ(cache.writebacks(), 0u);
    EXPECT_EQ(cache.writebackCycles(), 0u);
    EXPECT_EQ(dram.writes(), 0u);

    // A demand fill is still occupying the bus (8 cycles from cycle
    // 1000) when the flush issues at the same cycle: the first victim
    // queues behind the fill, the second behind the first.
    cache.access(0x080, false, 1000); // clean fill: must NOT write back
    cache.flush(1000);
    EXPECT_EQ(cache.writebacks(), 2u);
    EXPECT_EQ(dram.writes(), 2u);
    // First victim: 8 wait + 50 core + 8 transfer; second: 16 wait +
    // 50 + 8. Dropping either charge or double-issuing breaks this.
    EXPECT_EQ(cache.writebackCycles(), 66u + 74u);

    // The flush invalidated everything: a second flush is free.
    cache.flush(1000);
    EXPECT_EQ(cache.writebacks(), 2u);
    EXPECT_EQ(cache.writebackCycles(), 66u + 74u);
    EXPECT_EQ(dram.writes(), 2u);
}

// Whole-system guard for the opt-in contract: a contended config with
// every contention source disabled must reproduce the flat-latency
// golden stats exactly (same cycles, same cache traffic), because the
// degenerate DRAM path returns the same constant the flat backstop
// does. This is what keeps default results byte-identical.
TEST(DramIntegration, ZeroContentionConfigEqualsFlatGolden)
{
    workload::Program program =
        workload::generateProgram(workload::findProfile("compress"));

    sim::ProcessorConfig flat = sim::baselineConfig();

    sim::ProcessorConfig degenerate = sim::baselineConfig();
    degenerate.hierarchy.dram.contended = true;
    degenerate.hierarchy.dram.busBytesPerCycle = 0;
    degenerate.hierarchy.dram.banks = 0;
    degenerate.hierarchy.dram.maxOutstanding = 0;
    degenerate.hierarchy.dram.latency = 50;
    // writebackToNext stays false: the legacy zero-cost eviction path.

    sim::Processor a(flat, program);
    sim::Processor b(degenerate, program);
    const sim::SimResult ra = a.run(60000);
    const sim::SimResult rb = b.run(60000);

    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_DOUBLE_EQ(ra.ipc, rb.ipc);
    EXPECT_EQ(ra.stats.get("l2.accesses"), rb.stats.get("l2.accesses"));
    EXPECT_EQ(ra.stats.get("l2.misses"), rb.stats.get("l2.misses"));
    EXPECT_EQ(ra.stats.get("l1d.writebacks"),
              rb.stats.get("l1d.writebacks"));
    // The degenerate run exposes DRAM counters; the flat run must not.
    EXPECT_FALSE(ra.stats.has("dram.reads"));
    EXPECT_TRUE(rb.stats.has("dram.reads"));
    EXPECT_EQ(rb.stats.get("dram.reads"), rb.stats.get("l2.misses"));
    EXPECT_DOUBLE_EQ(rb.stats.get("dram.bus_wait_cycles"), 0.0);
}

// Under real contention the same workload must get slower, and the
// memory-pressure counters must light up.
TEST(DramIntegration, ContentionCostsCyclesAndShowsTraffic)
{
    workload::Program program =
        workload::generateProgram(workload::findProfile("gcc"));

    sim::ProcessorConfig flat = sim::baselineConfig();
    memory::DramParams dram;
    dram.busBytesPerCycle = 4; // narrow bus
    const sim::ProcessorConfig contended =
        sim::withContendedMemory(sim::baselineConfig(), dram);
    EXPECT_EQ(contended.name, "baseline+mem");
    EXPECT_NE(sim::configFingerprint(flat),
              sim::configFingerprint(contended));

    sim::Processor a(flat, program);
    sim::Processor b(contended, program);
    // 150k instructions: enough for gcc's data footprint to evict
    // dirty L1d lines (writeback traffic is zero below ~100k).
    const sim::SimResult ra = a.run(150000);
    const sim::SimResult rb = b.run(150000);

    EXPECT_GT(rb.cycles, ra.cycles);
    EXPECT_GT(rb.stats.get("dram.bus_wait_cycles"), 0.0);
    EXPECT_GT(rb.stats.get("l1d.writeback_cycles"), 0.0);
}

} // namespace
} // namespace tcsim::memory
