/**
 * @file
 * Tests for the parallel experiment engine: the thread pool itself and
 * the tier-1 determinism guarantee — a parallel sweep must be
 * bit-identical to the sequential sweep because simulations share no
 * mutable state.
 */

#include <atomic>
#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "bench/thread_pool.h"
#include "sim/processor.h"

namespace
{

using namespace tcsim;
using namespace tcsim::bench;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DefaultJobCountHonorsEnv)
{
    ::setenv("TCSIM_JOBS", "3", 1);
    EXPECT_EQ(defaultJobCount(), 3u);
    ::setenv("TCSIM_JOBS", "0", 1); // invalid: falls back to hardware
    EXPECT_GE(defaultJobCount(), 1u);
    ::unsetenv("TCSIM_JOBS");
    EXPECT_GE(defaultJobCount(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndex)
{
    std::vector<int> hits(257, 0);
    parallelFor(hits.size(),
                [&hits](std::size_t i) { hits[i] = 1; });
    for (const int hit : hits)
        EXPECT_EQ(hit, 1);
}

/** Every SimResult field that feeds a published table. */
void
expectIdentical(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.effectiveFetchRate, b.effectiveFetchRate);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.condMispredicts, b.condMispredicts);
    EXPECT_EQ(a.promotedFaults, b.promotedFaults);
    EXPECT_EQ(a.indirectMispredicts, b.indirectMispredicts);
    EXPECT_EQ(a.condMispredictRate, b.condMispredictRate);
    EXPECT_EQ(a.meanResolutionTime, b.meanResolutionTime);
    EXPECT_EQ(a.fetchesNeeding01, b.fetchesNeeding01);
    EXPECT_EQ(a.fetchesNeeding2, b.fetchesNeeding2);
    EXPECT_EQ(a.fetchesNeeding3, b.fetchesNeeding3);
    EXPECT_EQ(a.tcLookups, b.tcLookups);
    EXPECT_EQ(a.tcHits, b.tcHits);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.promotedRetired, b.promotedRetired);
    for (unsigned c = 0;
         c < static_cast<unsigned>(sim::CycleCategory::NumCategories);
         ++c)
        EXPECT_EQ(a.cycleCat[c], b.cycleCat[c]);
}

TEST(BenchParallel, SweepIsBitIdenticalAcrossJobCounts)
{
    // The tier-1 determinism guarantee: fanning the suite across four
    // workers must reproduce the sequential results exactly, for the
    // paper's headline configurations (trace cache + fill unit + bias
    // table, and the icache/hybrid-predictor front end).
    constexpr std::uint64_t kBudget = 15000;
    const std::vector<sim::ProcessorConfig> configs = {
        sim::baselineConfig(),
        sim::promotionPackingConfig(64,
                                    trace::PackingPolicy::CostRegulated),
        sim::icacheConfig(),
    };

    std::vector<RunRequest> requests;
    for (const sim::ProcessorConfig &config : configs)
        for (const std::string &bench : allBenchmarks())
            requests.push_back(RunRequest{bench, config, kBudget});

    const std::vector<sim::SimResult> sequential = runAll(requests, 1);
    const std::vector<sim::SimResult> parallel = runAll(requests, 4);

    ASSERT_EQ(sequential.size(), requests.size());
    ASSERT_EQ(parallel.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE(requests[i].benchmark + " / " +
                     requests[i].config.name);
        expectIdentical(sequential[i], parallel[i]);
    }
}

TEST(BenchParallel, SweepMatrixShapeMatchesInputs)
{
    const std::vector<std::string> benchmarks = {"compress", "li"};
    std::vector<RunRequest> requests;
    for (const std::string &bench : benchmarks)
        requests.push_back(
            RunRequest{bench, sim::baselineConfig(), 5000});
    const std::vector<sim::SimResult> results = runAll(requests, 2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].benchmark, "compress");
    EXPECT_EQ(results[1].benchmark, "li");
    for (const sim::SimResult &r : results)
        EXPECT_GE(r.instructions, 5000u);
}

} // namespace
