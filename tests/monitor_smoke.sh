#!/bin/bash
# End-to-end smoke test for the sweep-farm telemetry, driven by ctest:
#
#  1. single-process reference run (no telemetry),
#  2. 2-shard run with heartbeats enabled, then `tcsim_sweep --status`
#     and `tcsim_monitor --once` over the finished farm — both must
#     see every unit done and emit a valid tcsim-farm-status-v1
#     snapshot,
#  3. merge with heartbeat files still in the fragments directory —
#     byte-identical to the unmonitored reference,
#  4. `tcsim_regress` self-compare (clean, exit 0) and against a
#     perturbed current run (regression, exit 5).
#
# Usage: monitor_smoke.sh <cmake-build-dir>
set -eu

sweep="$1/tools/tcsim_sweep"
monitor="$1/tools/tcsim_monitor"
regress="$1/tools/tcsim_regress"
validate="$(cd "$(dirname "$0")/.." && pwd)/tools/validate_obs.py"
for bin in "$sweep" "$monitor" "$regress"; do
    [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# Matrix args (shared with tcsim_monitor) vs the sweep-only cache dir.
matrix=(--benchmarks compress,li --configs baseline,promotion-t64
        --insts 20000 --warmup 5000)
margs=("${matrix[@]}" --cache-dir "$scratch/cache")

echo "== unmonitored single-process reference =="
"$sweep" "${margs[@]}" --out "$scratch/single.json"

echo "== 2-shard run with heartbeats =="
"$sweep" "${margs[@]}" --shard 0/2 --heartbeat 0.5 \
         --fragments-dir "$scratch/frags"
"$sweep" "${margs[@]}" --shard 1/2 --heartbeat 0.5 \
         --fragments-dir "$scratch/frags"
ls "$scratch/frags"/heartbeat-shard0.json \
   "$scratch/frags"/heartbeat-shard1.json > /dev/null

echo "== tcsim_sweep --status sees the finished farm =="
"$sweep" "${margs[@]}" --status --fragments-dir "$scratch/frags" \
         --status-out "$scratch/status-sweep.json" | tee "$scratch/dash.txt"
grep -q "4/4 units" "$scratch/dash.txt"
python3 "$validate" --farm-status "$scratch/status-sweep.json"
python3 "$validate" --heartbeat "$scratch/frags/heartbeat-shard0.json"

echo "== tcsim_monitor --once agrees and exits 0 =="
"$monitor" "${matrix[@]}" --once --fragments-dir "$scratch/frags" \
           --status-out "$scratch/status-monitor.json" > /dev/null
python3 "$validate" --farm-status "$scratch/status-monitor.json"
python3 - "$scratch/status-monitor.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["units_done"] == doc["units_total"] == 4, doc
assert doc["workers_stale"] == 0, doc
assert all(w["phase"] == "done" for w in doc["workers"]), doc
EOF

echo "== merge ignores heartbeats: byte-identical =="
"$sweep" "${margs[@]}" --merge --fragments-dir "$scratch/frags" \
         --out "$scratch/merged.json"
cmp "$scratch/single.json" "$scratch/merged.json"

echo "== regress self-compare is clean =="
"$regress" --baseline "$scratch/merged.json" \
           --current "$scratch/merged.json" \
           --out "$scratch/regress-clean.json"
python3 "$validate" --regression "$scratch/regress-clean.json"

echo "== regress flags an injected IPC loss with exit 5 =="
python3 - "$scratch/merged.json" "$scratch/perturbed.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["results"][0]["ipc"] *= 0.9
json.dump(doc, open(sys.argv[2], "w"))
EOF
rc=0
"$regress" --baseline "$scratch/merged.json" \
           --current "$scratch/perturbed.json" \
           --out "$scratch/regress-bad.json" || rc=$?
[ "$rc" -eq 5 ] || { echo "expected regress exit 5, got $rc" >&2; exit 1; }
python3 "$validate" --regression "$scratch/regress-bad.json"
python3 - "$scratch/regress-bad.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["regressed"] is True, doc
bad = [u for u in doc["units"] if u["regressed"]]
assert len(bad) == 1, bad
assert any(m["name"] == "ipc" and m["regressed"] for m in bad[0]["metrics"])
EOF

echo "monitor smoke OK"
